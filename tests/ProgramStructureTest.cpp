//===- tests/ProgramStructureTest.cpp - Binary analysis front-end tests ---===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/ProgramStructure.h"

#include "cfg/SyntheticCodeGen.h"

#include "gtest/gtest.h"

using namespace ccprof;

namespace {

BinaryImage twoFunctionImage() {
  LoopSpec Inner;
  Inner.HeaderLine = 12;
  Inner.EndLine = 15;
  Inner.AccessLines = {13, 14};
  LoopSpec Outer;
  Outer.HeaderLine = 10;
  Outer.EndLine = 16;
  Outer.Children = {Inner};
  FunctionSpec Hot;
  Hot.Name = "hot";
  Hot.StartLine = 8;
  Hot.EndLine = 20;
  Hot.Loops = {Outer};

  LoopSpec Flat;
  Flat.HeaderLine = 40;
  Flat.EndLine = 44;
  Flat.AccessLines = {42};
  FunctionSpec Cold;
  Cold.Name = "cold";
  Cold.StartLine = 38;
  Cold.EndLine = 48;
  Cold.Loops = {Flat};

  return lowerToBinary("prog.cpp", {Hot, Cold});
}

} // namespace

TEST(ProgramStructureTest, DiscoversAllLoops) {
  BinaryImage Image = twoFunctionImage();
  ProgramStructure S(Image);
  EXPECT_EQ(S.numFunctions(), 2u);
  EXPECT_EQ(S.numLoops(), 3u);
  EXPECT_EQ(S.allLoops().size(), 3u);
}

TEST(ProgramStructureTest, InnermostLoopAcrossFunctions) {
  BinaryImage Image = twoFunctionImage();
  ProgramStructure S(Image);

  auto Inner = S.innermostLoopForLine(13);
  ASSERT_TRUE(Inner.has_value());
  EXPECT_EQ(Inner->FunctionIndex, 0u);
  EXPECT_EQ(S.headerLine(*Inner), 12u);
  EXPECT_EQ(S.depth(*Inner), 2u);

  auto Flat = S.innermostLoopForLine(42);
  ASSERT_TRUE(Flat.has_value());
  EXPECT_EQ(Flat->FunctionIndex, 1u);
  EXPECT_EQ(S.headerLine(*Flat), 40u);
  EXPECT_EQ(S.depth(*Flat), 1u);

  EXPECT_FALSE(S.innermostLoopForLine(30).has_value());
  EXPECT_FALSE(S.innermostLoopForLine(999).has_value());
}

TEST(ProgramStructureTest, DescribeLoopUsesHeaderLine) {
  BinaryImage Image = twoFunctionImage();
  ProgramStructure S(Image);
  auto Inner = S.innermostLoopForLine(13);
  ASSERT_TRUE(Inner.has_value());
  EXPECT_EQ(S.describeLoop(*Inner), "prog.cpp:12");
}

TEST(ProgramStructureTest, OuterLoopLineFallsToOuter) {
  BinaryImage Image = twoFunctionImage();
  ProgramStructure S(Image);
  // Line 16 is the outer loop's latch, outside the inner loop's span.
  auto Loop = S.innermostLoopForLine(16);
  ASSERT_TRUE(Loop.has_value());
  EXPECT_EQ(S.headerLine(*Loop), 10u);
}

TEST(ProgramStructureTest, LoopFreeImage) {
  FunctionSpec Plain;
  Plain.Name = "plain";
  Plain.StartLine = 1;
  Plain.EndLine = 5;
  Plain.AccessLines = {3};
  BinaryImage Image = lowerToBinary("plain.cpp", {Plain});
  ProgramStructure S(Image);
  EXPECT_EQ(S.numLoops(), 0u);
  EXPECT_FALSE(S.innermostLoopForLine(3).has_value());
}

TEST(ProgramStructureTest, LoopRefOrdering) {
  LoopRef A{0, 1};
  LoopRef B{0, 2};
  LoopRef C{1, 0};
  EXPECT_LT(A, B);
  EXPECT_LT(B, C);
  EXPECT_EQ(A, (LoopRef{0, 1}));
}
