//===- tests/SamplingApproximationTest.cpp - Approximation soundness ------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Statistical properties of the sampled-RCD approximation (paper
// Sec. 3.3): on synthetic miss streams with known structure, the
// contribution factor measured through bursty sampling must converge to
// the exact value, stay on the correct side of the decision boundary,
// and degrade gracefully — never catastrophically — as the period grows.
//
//===----------------------------------------------------------------------===//

#include "core/RcdAnalyzer.h"
#include "pmu/PebsSampler.h"
#include "sim/MachineConfig.h"
#include "support/Rng.h"

#include "gtest/gtest.h"

#include <vector>

using namespace ccprof;

namespace {

/// Builds a miss stream over 64 sets: Conflicting streams hammer a
/// rotating victim (RCD 1-2); clean streams round-robin (RCD 64).
std::vector<MissEvent> makeStream(bool Conflicting, size_t NumMisses,
                                  uint64_t Seed) {
  std::vector<MissEvent> Stream;
  Stream.reserve(NumMisses);
  Xoshiro256 Rng(Seed);
  uint64_t Victim = 0;
  for (size_t I = 0; I < NumMisses; ++I) {
    uint64_t Set;
    if (Conflicting) {
      // Dwell on the victim ~16 misses, then migrate.
      if (I % 16 == 15)
        Victim = Rng.nextBounded(64);
      Set = Victim;
    } else {
      Set = I % 64;
    }
    Stream.push_back(MissEvent{1, Set * 64, Set * 64});
  }
  return Stream;
}

/// cf(RCD < 8) of a stream observed through the given sampler config.
double sampledCf(const std::vector<MissEvent> &Stream,
                 SamplingConfig Config) {
  PebsSampler Sampler(Config);
  RcdProfile Profile(64);
  CacheGeometry G = paperL1Geometry();
  for (const PebsSample &S : Sampler.sampleStream(Stream))
    Profile.addMiss(G.setIndexOf(S.Event.Addr), S.EventIndex + 1);
  return Profile.contributionFactor(8);
}

double exactCf(const std::vector<MissEvent> &Stream) {
  SamplingConfig Exact;
  Exact.Kind = SamplingKind::Fixed;
  Exact.MeanPeriod = 1;
  return sampledCf(Stream, Exact);
}

} // namespace

TEST(SamplingApproximationTest, ExactValuesAnchorTheScale) {
  auto Conflicting = makeStream(true, 200000, 1);
  auto Clean = makeStream(false, 200000, 2);
  EXPECT_GT(exactCf(Conflicting), 0.85);
  EXPECT_DOUBLE_EQ(exactCf(Clean), 0.0);
}

TEST(SamplingApproximationTest, BurstySamplingConvergesToExact) {
  auto Conflicting = makeStream(true, 400000, 3);
  double Exact = exactCf(Conflicting);
  for (uint64_t Period : {50ull, 171ull, 1212ull}) {
    SamplingConfig Config;
    Config.Kind = SamplingKind::Bursty;
    Config.MeanPeriod = Period;
    double Approx = sampledCf(Conflicting, Config);
    EXPECT_NEAR(Approx, Exact, 0.15) << "period " << Period;
  }
}

TEST(SamplingApproximationTest, CleanStreamsNeverFakeConflicts) {
  // The event-distance formulation's key guarantee: sparse observation
  // of a balanced stream cannot manufacture short distances.
  auto Clean = makeStream(false, 400000, 4);
  for (uint64_t Period : {17ull, 171ull, 1212ull}) {
    for (SamplingKind Kind :
         {SamplingKind::Fixed, SamplingKind::UniformJitter,
          SamplingKind::Bursty}) {
      SamplingConfig Config;
      Config.Kind = Kind;
      Config.MeanPeriod = Period;
      EXPECT_LE(sampledCf(Clean, Config), 0.02)
          << "period " << Period << " kind " << static_cast<int>(Kind);
    }
  }
}

TEST(SamplingApproximationTest, SeparationSurvivesAcrossSeeds) {
  // Across sampler phases/seeds, conflicting always scores far above
  // clean at the paper's recommended period.
  auto Conflicting = makeStream(true, 300000, 5);
  auto Clean = makeStream(false, 300000, 6);
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    SamplingConfig Config;
    Config.Kind = SamplingKind::Bursty;
    Config.MeanPeriod = 1212;
    Config.Seed = Seed;
    double Hot = sampledCf(Conflicting, Config);
    double Cold = sampledCf(Clean, Config);
    EXPECT_GT(Hot - Cold, 0.5) << "seed " << Seed;
  }
}

TEST(SamplingApproximationTest, JitteredSamplingCannotSeeShortRcd) {
  // The ablation's negative result as an invariant: without bursts, no
  // two samples are closer than ~period/2, so cf at threshold 8 is
  // structurally zero once the period exceeds 16.
  auto Conflicting = makeStream(true, 300000, 7);
  SamplingConfig Config;
  Config.Kind = SamplingKind::UniformJitter;
  Config.MeanPeriod = 171;
  EXPECT_DOUBLE_EQ(sampledCf(Conflicting, Config), 0.0);
}

TEST(SamplingApproximationTest, SampleCountTracksPeriod) {
  auto Stream = makeStream(true, 242400, 8);
  for (uint64_t Period : {100ull, 1212ull}) {
    SamplingConfig Config;
    Config.Kind = SamplingKind::Bursty;
    Config.MeanPeriod = Period;
    PebsSampler Sampler(Config);
    size_t Samples = Sampler.sampleStream(Stream).size();
    double Expected = static_cast<double>(Stream.size()) /
                      static_cast<double>(Period);
    EXPECT_GT(Samples, Expected * 0.75) << "period " << Period;
    EXPECT_LT(Samples, Expected * 1.25) << "period " << Period;
  }
}
