//===- tests/DominatorsTest.cpp - Dominator tree unit tests ---------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cfg/Dominators.h"

#include "gtest/gtest.h"

using namespace ccprof;

namespace {

struct InsnSpec {
  InsnKind Kind;
  size_t TargetIndex = 0;
};

BinaryImage buildFunction(const std::vector<InsnSpec> &Specs) {
  BinaryImage Image("dom.cpp");
  Image.beginFunction("f");
  uint64_t Base = Image.nextAddr();
  uint32_t Line = 1;
  for (const InsnSpec &Spec : Specs) {
    Instruction Insn;
    Insn.Line = Line++;
    Insn.Kind = Spec.Kind;
    Insn.Target = Base + Spec.TargetIndex * BinaryImage::InsnSize;
    Image.appendInstruction(Insn);
  }
  Image.endFunction();
  return Image;
}

} // namespace

TEST(DominatorsTest, StraightLine) {
  BinaryImage Image = buildFunction({
      {InsnKind::Sequential},
      {InsnKind::Jump, 2},
      {InsnKind::Return},
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  DominatorTree Dom(Graph);
  EXPECT_EQ(Dom.idom(Graph.entry()), Graph.entry());
  for (BlockId B = 0; B < Graph.numBlocks(); ++B) {
    EXPECT_TRUE(Dom.dominates(Graph.entry(), B));
    EXPECT_TRUE(Dom.dominates(B, B)) << "dominance is reflexive";
  }
}

TEST(DominatorsTest, DiamondMergeDominatedByEntryOnly) {
  // B0 -> {B1, B2} -> B3.
  BinaryImage Image = buildFunction({
      {InsnKind::Sequential},        // 0  B0
      {InsnKind::CondBranch, 4},     // 1  B0
      {InsnKind::Sequential},        // 2  B1 (then)
      {InsnKind::Jump, 5},           // 3  B1
      {InsnKind::Sequential},        // 4  B2 (else)
      {InsnKind::Sequential},        // 5  B3 (merge)
      {InsnKind::Return},            // 6  B3
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  ASSERT_EQ(Graph.numBlocks(), 4u);
  DominatorTree Dom(Graph);
  EXPECT_EQ(Dom.idom(1), 0u);
  EXPECT_EQ(Dom.idom(2), 0u);
  EXPECT_EQ(Dom.idom(3), 0u) << "merge is dominated by the fork point";
  EXPECT_FALSE(Dom.dominates(1, 3));
  EXPECT_FALSE(Dom.dominates(2, 3));
  EXPECT_TRUE(Dom.dominates(0, 3));
  EXPECT_FALSE(Dom.dominates(1, 2));
}

TEST(DominatorsTest, LoopHeaderDominatesBody) {
  // B0 -> B1(header) <-> B2(body); B1 -> B3(exit).
  BinaryImage Image = buildFunction({
      {InsnKind::Sequential},     // 0  B0
      {InsnKind::CondBranch, 4},  // 1  B1 header
      {InsnKind::Sequential},     // 2  B2 body
      {InsnKind::Jump, 1},        // 3  B2 latch
      {InsnKind::Return},         // 4  B3 exit
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  DominatorTree Dom(Graph);
  EXPECT_TRUE(Dom.dominates(1, 2));
  EXPECT_TRUE(Dom.dominates(1, 3));
  EXPECT_FALSE(Dom.dominates(2, 1));
  EXPECT_EQ(Dom.idom(2), 1u);
  EXPECT_EQ(Dom.idom(3), 1u);
}

TEST(DominatorsTest, NestedDiamonds) {
  // Outer diamond whose 'then' arm is itself a diamond.
  BinaryImage Image = buildFunction({
      {InsnKind::CondBranch, 7},  // 0 B0 -> else(7) / then(1)
      {InsnKind::CondBranch, 4},  // 1 B1 inner fork
      {InsnKind::Sequential},     // 2 B2 inner then
      {InsnKind::Jump, 5},        // 3 B2
      {InsnKind::Sequential},     // 4 B3 inner else
      {InsnKind::Sequential},     // 5 B4 inner merge
      {InsnKind::Jump, 8},        // 6 B4 -> outer merge
      {InsnKind::Sequential},     // 7 B5 outer else
      {InsnKind::Sequential},     // 8 B6 outer merge
      {InsnKind::Return},         // 9 B6
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  ASSERT_EQ(Graph.numBlocks(), 7u);
  DominatorTree Dom(Graph);
  // Inner merge (B4) is dominated by the inner fork (B1).
  EXPECT_EQ(Dom.idom(4), 1u);
  // Outer merge (B6) is dominated by the entry fork only.
  EXPECT_EQ(Dom.idom(6), 0u);
  EXPECT_TRUE(Dom.dominates(1, 2));
  EXPECT_TRUE(Dom.dominates(1, 4));
  EXPECT_FALSE(Dom.dominates(1, 6));
}

TEST(DominatorsTest, EveryReachableBlockReachable) {
  BinaryImage Image = buildFunction({
      {InsnKind::CondBranch, 3},
      {InsnKind::Sequential},
      {InsnKind::Jump, 4},
      {InsnKind::Sequential},
      {InsnKind::Return},
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  DominatorTree Dom(Graph);
  for (BlockId B = 0; B < Graph.numBlocks(); ++B)
    EXPECT_TRUE(Dom.isReachable(B));
}
