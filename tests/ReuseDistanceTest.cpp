//===- tests/ReuseDistanceTest.cpp - Reuse distance unit tests ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"
#include "sim/ReuseDistance.h"
#include "support/Rng.h"

#include "gtest/gtest.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace ccprof;

TEST(ReuseDistanceTest, FirstTouchIsInfinite) {
  ReuseDistanceAnalyzer A;
  EXPECT_EQ(A.access(1), ReuseDistanceAnalyzer::Infinite);
  EXPECT_EQ(A.access(2), ReuseDistanceAnalyzer::Infinite);
  EXPECT_EQ(A.coldCount(), 2u);
}

TEST(ReuseDistanceTest, ImmediateReuseIsZero) {
  ReuseDistanceAnalyzer A;
  A.access(1);
  EXPECT_EQ(A.access(1), 0u);
}

TEST(ReuseDistanceTest, CountsDistinctIntermediateLines) {
  ReuseDistanceAnalyzer A;
  A.access(1);
  A.access(2);
  A.access(3);
  A.access(2); // repeated line must not double-count
  EXPECT_EQ(A.access(1), 2u); // {2, 3}
}

TEST(ReuseDistanceTest, CyclicPattern) {
  ReuseDistanceAnalyzer A;
  // a b c a b c: each reuse has distance 2.
  for (int Round = 0; Round < 2; ++Round)
    for (uint64_t L = 0; L < 3; ++L)
      A.access(L);
  EXPECT_EQ(A.distances().total(), 3u);
  EXPECT_EQ(A.distances().count(2), 3u);
}

TEST(ReuseDistanceTest, MissRatioAtCapacity) {
  ReuseDistanceAnalyzer A;
  // Distances: three at 2.
  for (int Round = 0; Round < 2; ++Round)
    for (uint64_t L = 0; L < 3; ++L)
      A.access(L);
  EXPECT_DOUBLE_EQ(A.missRatioAtCapacity(3), 0.0);
  EXPECT_DOUBLE_EQ(A.missRatioAtCapacity(2), 1.0);
}

TEST(ReuseDistanceTest, ResetClears) {
  ReuseDistanceAnalyzer A;
  A.access(1);
  A.access(1);
  A.reset();
  EXPECT_EQ(A.coldCount(), 0u);
  EXPECT_TRUE(A.distances().empty());
  EXPECT_EQ(A.access(1), ReuseDistanceAnalyzer::Infinite);
}

TEST(ReuseDistanceTest, MatchesNaiveReferenceImplementation) {
  // Cross-check the Fenwick implementation against an O(n^2) oracle on
  // a random trace (also exercises the growth/rebuild path).
  ReuseDistanceAnalyzer A;
  Xoshiro256 Rng(0x5eed);
  std::vector<uint64_t> TraceLines;
  std::unordered_map<uint64_t, size_t> LastIndex;
  for (int I = 0; I < 3000; ++I) {
    uint64_t Line = Rng.nextBounded(64);
    uint64_t Got = A.access(Line);
    auto It = LastIndex.find(Line);
    if (It == LastIndex.end()) {
      EXPECT_EQ(Got, ReuseDistanceAnalyzer::Infinite);
    } else {
      std::unordered_set<uint64_t> Distinct;
      for (size_t J = It->second + 1; J < TraceLines.size(); ++J)
        Distinct.insert(TraceLines[J]);
      EXPECT_EQ(Got, Distinct.size()) << "at access " << I;
    }
    LastIndex[Line] = TraceLines.size();
    TraceLines.push_back(Line);
  }
}

TEST(ReuseDistanceTest, PredictsFullyAssociativeLruHits) {
  // The classic theorem: an access hits an N-line fully-associative LRU
  // cache iff its reuse distance is < N.
  constexpr uint64_t Capacity = 16;
  ReuseDistanceAnalyzer A;
  FullyAssociativeLru Cache(Capacity);
  Xoshiro256 Rng(0xfeed);
  for (int I = 0; I < 20000; ++I) {
    uint64_t Line = Rng.nextBounded(40);
    uint64_t Distance = A.access(Line);
    bool Hit = Cache.access(Line);
    bool Predicted = Distance != ReuseDistanceAnalyzer::Infinite &&
                     Distance < Capacity;
    EXPECT_EQ(Hit, Predicted) << "at access " << I;
  }
}
