//===- tests/ReuseDistanceTest.cpp - Reuse distance unit tests ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"
#include "sim/ReuseDistance.h"
#include "support/Rng.h"

#include "gtest/gtest.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace ccprof;

TEST(ReuseDistanceTest, FirstTouchIsInfinite) {
  ReuseDistanceAnalyzer A;
  EXPECT_EQ(A.access(1), ReuseDistanceAnalyzer::Infinite);
  EXPECT_EQ(A.access(2), ReuseDistanceAnalyzer::Infinite);
  EXPECT_EQ(A.coldCount(), 2u);
}

TEST(ReuseDistanceTest, ImmediateReuseIsZero) {
  ReuseDistanceAnalyzer A;
  A.access(1);
  EXPECT_EQ(A.access(1), 0u);
}

TEST(ReuseDistanceTest, CountsDistinctIntermediateLines) {
  ReuseDistanceAnalyzer A;
  A.access(1);
  A.access(2);
  A.access(3);
  A.access(2); // repeated line must not double-count
  EXPECT_EQ(A.access(1), 2u); // {2, 3}
}

TEST(ReuseDistanceTest, CyclicPattern) {
  ReuseDistanceAnalyzer A;
  // a b c a b c: each reuse has distance 2.
  for (int Round = 0; Round < 2; ++Round)
    for (uint64_t L = 0; L < 3; ++L)
      A.access(L);
  EXPECT_EQ(A.distances().total(), 3u);
  EXPECT_EQ(A.distances().count(2), 3u);
}

TEST(ReuseDistanceTest, MissRatioAtCapacity) {
  ReuseDistanceAnalyzer A;
  // Distances: three at 2.
  for (int Round = 0; Round < 2; ++Round)
    for (uint64_t L = 0; L < 3; ++L)
      A.access(L);
  EXPECT_DOUBLE_EQ(A.missRatioAtCapacity(3), 0.0);
  EXPECT_DOUBLE_EQ(A.missRatioAtCapacity(2), 1.0);
}

TEST(ReuseDistanceTest, ResetClears) {
  ReuseDistanceAnalyzer A;
  A.access(1);
  A.access(1);
  A.reset();
  EXPECT_EQ(A.coldCount(), 0u);
  EXPECT_TRUE(A.distances().empty());
  EXPECT_EQ(A.access(1), ReuseDistanceAnalyzer::Infinite);
}

TEST(ReuseDistanceTest, MatchesNaiveReferenceImplementation) {
  // Cross-check the Fenwick implementation against an O(n^2) oracle on
  // a random trace (also exercises the growth/rebuild path).
  ReuseDistanceAnalyzer A;
  Xoshiro256 Rng(0x5eed);
  std::vector<uint64_t> TraceLines;
  std::unordered_map<uint64_t, size_t> LastIndex;
  for (int I = 0; I < 3000; ++I) {
    uint64_t Line = Rng.nextBounded(64);
    uint64_t Got = A.access(Line);
    auto It = LastIndex.find(Line);
    if (It == LastIndex.end()) {
      EXPECT_EQ(Got, ReuseDistanceAnalyzer::Infinite);
    } else {
      std::unordered_set<uint64_t> Distinct;
      for (size_t J = It->second + 1; J < TraceLines.size(); ++J)
        Distinct.insert(TraceLines[J]);
      EXPECT_EQ(Got, Distinct.size()) << "at access " << I;
    }
    LastIndex[Line] = TraceLines.size();
    TraceLines.push_back(Line);
  }
}

TEST(ReuseDistanceTest, OverallMissRatioIsColdInclusive) {
  ReuseDistanceAnalyzer A;
  // a b c a b c: 3 cold misses, 3 reuses at distance 2, 6 refs total.
  for (int Round = 0; Round < 2; ++Round)
    for (uint64_t L = 0; L < 3; ++L)
      A.access(L);
  EXPECT_EQ(A.totalRefs(), 6u);
  // Reuse-only denominator: all 3 reuses hit at capacity 3.
  EXPECT_DOUBLE_EQ(A.missRatioAtCapacity(3), 0.0);
  // Cold-inclusive denominator counts the 3 compulsory misses too.
  EXPECT_EQ(A.overallMissCountAtCapacity(3), 3u);
  EXPECT_DOUBLE_EQ(A.overallMissRatioAtCapacity(3), 0.5);
  EXPECT_EQ(A.overallMissCountAtCapacity(2), 6u);
  EXPECT_DOUBLE_EQ(A.overallMissRatioAtCapacity(2), 1.0);
}

TEST(ReuseDistanceTest, OverallMissCountMatchesLruReplay) {
  // overallMissCountAtCapacity(C) must equal an actual C-line
  // fully-associative LRU replay, for every capacity.
  Xoshiro256 Rng(0xabcd);
  std::vector<uint64_t> Lines;
  for (int I = 0; I < 5000; ++I)
    Lines.push_back(Rng.nextBounded(48));
  ReuseDistanceAnalyzer A;
  for (uint64_t Line : Lines)
    A.access(Line);
  for (uint64_t Capacity : {1u, 2u, 8u, 16u, 32u, 48u, 64u}) {
    FullyAssociativeLru Cache(Capacity);
    uint64_t Misses = 0;
    for (uint64_t Line : Lines)
      Misses += Cache.access(Line) ? 0 : 1;
    EXPECT_EQ(A.overallMissCountAtCapacity(Capacity), Misses)
        << "capacity " << Capacity;
    EXPECT_DOUBLE_EQ(A.overallMissRatioAtCapacity(Capacity),
                     static_cast<double>(Misses) /
                         static_cast<double>(Lines.size()));
  }
}

TEST(ReuseDistanceTest, EvictForgetsALine) {
  ReuseDistanceAnalyzer A;
  A.access(1);
  A.access(2);
  EXPECT_EQ(A.trackedLines(), 2u);
  EXPECT_TRUE(A.evict(1));
  EXPECT_FALSE(A.evict(1)); // already gone
  EXPECT_EQ(A.trackedLines(), 1u);
  // An evicted line's next access is cold again and must not count the
  // evicted occurrence as an intervening distinct line either.
  EXPECT_EQ(A.access(1), ReuseDistanceAnalyzer::Infinite);
  A.access(3);
  EXPECT_EQ(A.access(2), 2u); // {1, 3} intervened; the evicted slot didn't
}

TEST(ReuseDistanceTest, CompactionIsTransparent) {
  // A hot small working set inside a long stream triggers timestamp
  // compaction (live lines << clock); distances must stay oracle-exact
  // across the rebuilds. Evictions keep the live set small. The oracle
  // mirrors the analyzer's semantics directly: each tracked line holds
  // one mark at its last access, so the distance of a reuse of Y is the
  // number of tracked lines accessed more recently than Y.
  ReuseDistanceAnalyzer A;
  Xoshiro256 Rng(0x77);
  std::unordered_map<uint64_t, size_t> LastIndex; // tracked lines only
  size_t Position = 0;
  for (int I = 0; I < 20000; ++I) {
    uint64_t Line = Rng.nextBounded(16);
    uint64_t Got = A.access(Line);
    auto It = LastIndex.find(Line);
    if (It == LastIndex.end()) {
      EXPECT_EQ(Got, ReuseDistanceAnalyzer::Infinite) << "at access " << I;
    } else {
      uint64_t MoreRecent = 0;
      for (const auto &[Other, Last] : LastIndex)
        MoreRecent += Last > It->second ? 1 : 0;
      EXPECT_EQ(Got, MoreRecent) << "at access " << I;
    }
    LastIndex[Line] = Position++;
    // Periodically evict a line so the footprint stays small relative
    // to the clock and compaction actually fires.
    if (I % 37 == 0 && A.evict(Line))
      LastIndex.erase(Line);
    ASSERT_EQ(A.trackedLines(), LastIndex.size()) << "at access " << I;
  }
  EXPECT_LE(A.trackedLines(), 16u);
}

TEST(ReuseDistanceTest, PredictsFullyAssociativeLruHits) {
  // The classic theorem: an access hits an N-line fully-associative LRU
  // cache iff its reuse distance is < N.
  constexpr uint64_t Capacity = 16;
  ReuseDistanceAnalyzer A;
  FullyAssociativeLru Cache(Capacity);
  Xoshiro256 Rng(0xfeed);
  for (int I = 0; I < 20000; ++I) {
    uint64_t Line = Rng.nextBounded(40);
    uint64_t Distance = A.access(Line);
    bool Hit = Cache.access(Line);
    bool Predicted = Distance != ReuseDistanceAnalyzer::Infinite &&
                     Distance < Capacity;
    EXPECT_EQ(Hit, Predicted) << "at access " << I;
  }
}
