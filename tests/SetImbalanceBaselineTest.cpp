//===- tests/SetImbalanceBaselineTest.cpp - Baseline heuristic tests ------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/SetImbalanceBaseline.h"

#include "gtest/gtest.h"

#include <vector>

using namespace ccprof;

TEST(SetImbalanceBaselineTest, UniformDistributionIsClean) {
  std::vector<uint64_t> Counts(64, 100);
  SetImbalanceBaseline Baseline;
  ImbalanceVerdict V = Baseline.classify(Counts);
  EXPECT_FALSE(V.Conflict);
  EXPECT_DOUBLE_EQ(V.TopQuarterShare, 0.25);
  EXPECT_DOUBLE_EQ(V.CoefficientOfVariation, 0.0);
}

TEST(SetImbalanceBaselineTest, SingleHotSetIsFlagged) {
  std::vector<uint64_t> Counts(64, 0);
  Counts[17] = 1000;
  SetImbalanceBaseline Baseline;
  ImbalanceVerdict V = Baseline.classify(Counts);
  EXPECT_TRUE(V.Conflict);
  EXPECT_DOUBLE_EQ(V.TopQuarterShare, 1.0);
  EXPECT_GT(V.CoefficientOfVariation, 5.0);
}

TEST(SetImbalanceBaselineTest, NoMissesIsClean) {
  std::vector<uint64_t> Counts(64, 0);
  SetImbalanceBaseline Baseline;
  EXPECT_FALSE(Baseline.classify(Counts).Conflict);
}

TEST(SetImbalanceBaselineTest, ThresholdIsRespected) {
  // Top 16 of 64 sets hold 60% of the misses.
  std::vector<uint64_t> Counts(64, 10);
  for (int I = 0; I < 16; ++I)
    Counts[I] = 45;
  SetImbalanceBaseline Strict(0.5);
  SetImbalanceBaseline Lenient(0.7);
  EXPECT_TRUE(Strict.classify(Counts).Conflict);
  EXPECT_FALSE(Lenient.classify(Counts).Conflict);
}

TEST(SetImbalanceBaselineTest, SingleSetCache) {
  std::vector<uint64_t> Counts = {42};
  SetImbalanceBaseline Baseline;
  ImbalanceVerdict V = Baseline.classify(Counts);
  // One set holds everything by definition; share is 1 but CV is 0.
  EXPECT_DOUBLE_EQ(V.TopQuarterShare, 1.0);
  EXPECT_DOUBLE_EQ(V.CoefficientOfVariation, 0.0);
}

TEST(SetImbalanceBaselineTest, MigratingVictimLooksUniform) {
  // The structural blind spot: 64 phases each hammering one set leave
  // identical per-set totals.
  std::vector<uint64_t> Counts(64, 128); // 64 phases x 128 misses
  SetImbalanceBaseline Baseline;
  EXPECT_FALSE(Baseline.classify(Counts).Conflict)
      << "the static heuristic cannot see per-phase concentration";
}
