//===- tests/LogisticRegressionTest.cpp - Logistic model tests ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/LogisticRegression.h"

#include <cmath>

#include "gtest/gtest.h"

#include <vector>

using namespace ccprof;

TEST(LogisticRegressionTest, SeparableDataClassifiesPerfectly) {
  std::vector<double> X = {0.05, 0.10, 0.15, 0.20, 0.70, 0.80, 0.90, 0.99};
  std::vector<uint8_t> Y = {0, 0, 0, 0, 1, 1, 1, 1};
  SimpleLogisticRegression Model;
  Model.fit(X, Y);
  for (size_t I = 0; I < X.size(); ++I)
    EXPECT_EQ(Model.classify(X[I]), Y[I] != 0) << "at x = " << X[I];
}

TEST(LogisticRegressionTest, ProbabilitiesAreMonotone) {
  std::vector<double> X = {0.1, 0.2, 0.8, 0.9};
  std::vector<uint8_t> Y = {0, 0, 1, 1};
  SimpleLogisticRegression Model;
  Model.fit(X, Y);
  EXPECT_GT(Model.slope(), 0.0);
  double Previous = 0.0;
  for (double V = 0.0; V <= 1.0; V += 0.1) {
    double P = Model.predictProbability(V);
    EXPECT_GE(P, Previous);
    Previous = P;
  }
}

TEST(LogisticRegressionTest, DecisionBoundaryBetweenClasses) {
  std::vector<double> X = {0.1, 0.2, 0.8, 0.9};
  std::vector<uint8_t> Y = {0, 0, 1, 1};
  SimpleLogisticRegression Model;
  Model.fit(X, Y);
  double Boundary = Model.decisionBoundary();
  EXPECT_GT(Boundary, 0.2);
  EXPECT_LT(Boundary, 0.8);
  EXPECT_NEAR(Model.predictProbability(Boundary), 0.5, 1e-6);
}

TEST(LogisticRegressionTest, SeparableDataStaysFinite) {
  // Without the ridge penalty the MLE diverges on separable data; the
  // fit must converge to finite weights.
  std::vector<double> X = {0.0, 1.0};
  std::vector<uint8_t> Y = {0, 1};
  SimpleLogisticRegression Model;
  uint32_t Iterations = Model.fit(X, Y);
  EXPECT_LT(Iterations, 100u);
  EXPECT_TRUE(std::isfinite(Model.intercept()));
  EXPECT_TRUE(std::isfinite(Model.slope()));
}

TEST(LogisticRegressionTest, NoisyDataStillLearnsTrend) {
  // Overlapping classes: one mislabeled point each side.
  std::vector<double> X = {0.1, 0.15, 0.2, 0.85, 0.25, 0.8, 0.9, 0.95};
  std::vector<uint8_t> Y = {0, 0, 0, 0, 1, 1, 1, 1};
  SimpleLogisticRegression Model;
  Model.fit(X, Y);
  EXPECT_GT(Model.slope(), 0.0);
  EXPECT_LT(Model.predictProbability(0.0), 0.5);
  EXPECT_GT(Model.predictProbability(1.0), 0.5);
}

TEST(LogisticRegressionTest, ExtremeInputsDoNotOverflow) {
  std::vector<double> X = {-1000.0, 1000.0};
  std::vector<uint8_t> Y = {0, 1};
  SimpleLogisticRegression Model;
  Model.fit(X, Y);
  EXPECT_GE(Model.predictProbability(-1e9), 0.0);
  EXPECT_LE(Model.predictProbability(1e9), 1.0);
  EXPECT_TRUE(std::isfinite(Model.predictProbability(0.0)));
}

TEST(LogisticRegressionTest, AllSameLabelPredictsThatLabel) {
  std::vector<double> X = {0.1, 0.5, 0.9};
  std::vector<uint8_t> Y = {1, 1, 1};
  SimpleLogisticRegression Model;
  Model.fit(X, Y);
  EXPECT_GT(Model.predictProbability(0.5), 0.5);
}

TEST(LogisticRegressionTest, RefittingResetsWeights) {
  SimpleLogisticRegression Model;
  std::vector<double> X1 = {0.0, 1.0};
  std::vector<uint8_t> Up = {0, 1};
  Model.fit(X1, Up);
  double SlopeUp = Model.slope();
  std::vector<uint8_t> Down = {1, 0};
  Model.fit(X1, Down);
  EXPECT_LT(Model.slope(), 0.0);
  EXPECT_GT(SlopeUp, 0.0);
}
