//===- tests/CacheShardExactnessTest.cpp - Sharded simulation exactness ---===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The set-sharded parallel simulation engine claims bit-exactness: at
// every shard count and thread count, the merged global miss stream —
// and therefore every artifact downstream of it — is identical to what
// a sequential simulation produces. This suite enforces the claim at
// three layers:
//
//  * the sharding primitives (planShards / simulateShard /
//    mergeMissSeqs) against the scalar ReferenceCache oracle,
//    including per-set miss counts gathered from windowed shard caches;
//
//  * the trace-facing parallel collectors against their sequential
//    counterparts, across policies, store handling, L2 page mappings,
//    and the Random-policy sequential fallback;
//
//  * the batch runner: byte-identical serialized artifacts across
//    Workers / SimThreads / Shards combinations.
//
//===----------------------------------------------------------------------===//

#include "pipeline/JobRunner.h"
#include "sim/ReferenceCache.h"
#include "sim/ShardedSim.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

using namespace ccprof;

namespace {

// 64 sets, 2 ways: small enough that the synthetic stream exercises
// every set, many evictions, and window boundaries of every shard plan.
CacheGeometry testGeometry() { return CacheGeometry(8192, 64, 2); }

/// Mixed strided/random reference stream with stores, as a Trace.
Trace makeTrace(size_t NumRefs, uint64_t Seed = 0x7e57'5eed) {
  Trace T;
  T.reserve(NumRefs);
  Xoshiro256 Rng(Seed);
  uint64_t Stride = 0;
  for (size_t I = 0; I < NumRefs; ++I) {
    uint64_t Addr;
    if (I % 4 != 0) {
      Stride += 24;
      Addr = Stride % (1 << 18);
    } else {
      Addr = Rng.nextBounded(1 << 18);
    }
    if (Rng.nextBounded(8) < 3)
      T.recordStore(0, Addr, 8);
    else
      T.recordLoad(0, Addr, 8);
  }
  return T;
}

/// Oracle: global sequence numbers of every missing access (loads and
/// stores), from the scalar reference model.
std::vector<uint64_t> referenceMissSeqs(const Trace &T,
                                        const CacheGeometry &Geometry,
                                        ReplacementKind Policy) {
  ReferenceCache Oracle(Geometry, Policy);
  std::vector<uint64_t> Seqs;
  const std::span<const MemoryRecord> Records = T.records();
  for (size_t I = 0; I < Records.size(); ++I)
    if (!Oracle.access(Records[I].Addr, Records[I].IsWrite).Hit)
      Seqs.push_back(I);
  return Seqs;
}

/// Routes each record of \p T into its shard per \p Plan, preserving
/// global order within every shard.
std::vector<std::vector<ShardRef>>
partition(const Trace &T, const CacheGeometry &Geometry,
          std::span<const SetRange> Plan) {
  const ShardMap Map(Plan);
  std::vector<std::vector<ShardRef>> Shards(Plan.size());
  const std::span<const MemoryRecord> Records = T.records();
  for (size_t I = 0; I < Records.size(); ++I) {
    const MemoryRecord &R = Records[I];
    Shards[Map.shardOf(Geometry.setIndexOf(R.Addr))].push_back(
        ShardRef::make(I, R.Addr, R.IsWrite));
  }
  return Shards;
}

std::string serializeAll(const std::vector<JobOutcome> &Outcomes) {
  std::stringstream Stream;
  for (const JobOutcome &Outcome : Outcomes) {
    EXPECT_TRUE(Outcome.ok()) << Outcome.Error;
    if (Outcome.ok())
      Outcome.Artifact.writeTo(Stream);
  }
  return Stream.str();
}

} // namespace

TEST(ShardPlanTest, CoversEverySetExactlyOnce) {
  for (unsigned K : {1u, 2u, 3u, 7u, 64u, 200u}) {
    const std::vector<SetRange> Plan = planShards(64, K);
    EXPECT_LE(Plan.size(), std::min<size_t>(K, 64));
    uint64_t Next = 0;
    for (const SetRange &Range : Plan) {
      EXPECT_EQ(Range.Begin, Next) << "gap or overlap at shard boundary";
      EXPECT_GT(Range.End, Range.Begin) << "empty shard";
      Next = Range.End;
    }
    EXPECT_EQ(Next, 64u) << "plan does not cover the set space";

    const ShardMap Map(Plan);
    for (uint64_t Set = 0; Set < 64; ++Set)
      EXPECT_TRUE(Plan[Map.shardOf(Set)].contains(Set));
  }
}

TEST(CacheShardExactnessTest, MergedMissSeqsMatchReferenceOracle) {
  const CacheGeometry Geometry = testGeometry();
  const Trace T = makeTrace(60'000);

  for (ReplacementKind Policy :
       {ReplacementKind::Lru, ReplacementKind::Fifo,
        ReplacementKind::TreePlru}) {
    const std::vector<uint64_t> Expected =
        referenceMissSeqs(T, Geometry, Policy);
    ASSERT_FALSE(Expected.empty());

    for (unsigned K : {1u, 2u, 3u, 7u, 64u}) {
      const std::vector<SetRange> Plan = planShards(Geometry.numSets(), K);
      const std::vector<std::vector<ShardRef>> Parts =
          partition(T, Geometry, Plan);

      std::vector<std::vector<uint64_t>> PerShard(Plan.size());
      std::vector<Cache> ShardCaches;
      ShardCaches.reserve(Plan.size());
      for (size_t S = 0; S < Plan.size(); ++S) {
        ShardCaches.emplace_back(Geometry, Plan[S], Policy);
        simulateShard(ShardCaches[S], Parts[S], PerShard[S]);
      }
      EXPECT_EQ(mergeMissSeqs(PerShard), Expected)
          << "policy " << static_cast<int>(Policy) << ", " << K
          << " shard(s)";

      // Per-set miss counts, reassembled from the windowed shard
      // caches, must match the reference model set for set.
      ReferenceCache Oracle(Geometry, Policy);
      for (const MemoryRecord &R : T.records())
        Oracle.access(R.Addr, R.IsWrite);
      for (size_t S = 0; S < Plan.size(); ++S)
        for (uint64_t Set = Plan[S].Begin; Set < Plan[S].End; ++Set)
          ASSERT_EQ(ShardCaches[S].missesOnSet(Set), Oracle.missesOnSet(Set))
              << "set " << Set << ", " << K << " shard(s)";
    }
  }
}

TEST(CacheShardExactnessTest, WindowedCacheReuseIsExact) {
  const CacheGeometry Geometry = testGeometry();
  const Trace T = makeTrace(20'000);
  const std::vector<SetRange> Plan = planShards(Geometry.numSets(), 4);
  const std::vector<std::vector<ShardRef>> Parts =
      partition(T, Geometry, Plan);

  // Fresh caches, one per shard.
  std::vector<std::vector<uint64_t>> Fresh(Plan.size());
  for (size_t S = 0; S < Plan.size(); ++S) {
    Cache C(Geometry, Plan[S], ReplacementKind::Lru);
    simulateShard(C, Parts[S], Fresh[S]);
  }

  // One pooled cache rewound across all shards (equal window widths).
  std::vector<std::vector<uint64_t>> Reused(Plan.size());
  Cache Pooled(Geometry, Plan[0], ReplacementKind::Lru);
  for (size_t S = 0; S < Plan.size(); ++S) {
    Pooled.resetForReuse(Plan[S]);
    simulateShard(Pooled, Parts[S], Reused[S]);
    EXPECT_EQ(Pooled.window(), Plan[S]);
  }
  EXPECT_EQ(Fresh, Reused);

  // The pool recycles parked instances and counts the reuses.
  ShardCachePool Pool;
  std::unique_ptr<Cache> A =
      Pool.acquire(Geometry, ReplacementKind::Lru, Plan[0]);
  Pool.park(std::move(A));
  EXPECT_EQ(Pool.parked(), 1u);
  std::unique_ptr<Cache> B =
      Pool.acquire(Geometry, ReplacementKind::Lru, Plan[1]);
  EXPECT_EQ(Pool.reuses(), 1u);
  EXPECT_EQ(Pool.parked(), 0u);
  EXPECT_EQ(B->window(), Plan[1]);
  std::vector<uint64_t> FromPool;
  simulateShard(*B, Parts[1], FromPool);
  EXPECT_EQ(FromPool, Fresh[1]);

  // A mismatched geometry never reuses a parked instance.
  Pool.park(std::move(B));
  std::unique_ptr<Cache> C =
      Pool.acquire(CacheGeometry(16384, 64, 4), ReplacementKind::Lru,
                   SetRange{0, 16});
  EXPECT_EQ(Pool.reuses(), 1u);
  EXPECT_EQ(C->geometry().sizeBytes(), 16384u);
}

TEST(CacheShardExactnessTest, ParallelL1CollectorMatchesSequential) {
  const CacheGeometry Geometry = testGeometry();
  const Trace T = makeTrace(60'000);

  ThreadPool Pool(3);
  ShardCachePool CachePool;
  for (ReplacementKind Policy :
       {ReplacementKind::Lru, ReplacementKind::Fifo,
        ReplacementKind::TreePlru}) {
    for (bool IncludeStores : {false, true}) {
      MissStreamOptions Options;
      Options.Policy = Policy;
      Options.IncludeStores = IncludeStores;
      const std::vector<MissEvent> Sequential =
          collectL1MissStream(T, Geometry, Options);

      for (unsigned Shards : {0u, 1u, 2u, 3u, 7u, 64u}) {
        ThreadBudget Budget(4);
        SimContext Ctx;
        Ctx.Pool = &Pool;
        Ctx.Budget = &Budget;
        Ctx.CachePool = &CachePool;
        Ctx.Shards = Shards;
        Ctx.MinRefsToShard = 0;
        EXPECT_EQ(collectL1MissStreamParallel(T, Geometry, Options, Ctx),
                  Sequential)
            << "policy " << static_cast<int>(Policy) << ", stores "
            << IncludeStores << ", " << Shards << " shard(s)";
        // Every granted budget slot must have been returned.
        EXPECT_EQ(Budget.available(), 4u);
      }
    }
  }
}

TEST(CacheShardExactnessTest, ParallelL2CollectorMatchesSequential) {
  const CacheGeometry L1 = testGeometry();
  const CacheGeometry L2(32 * 1024, 64, 4);
  const Trace T = makeTrace(60'000);

  ThreadPool Pool(3);
  for (PagePolicy Mapping :
       {PagePolicy::Identity, PagePolicy::FirstTouch, PagePolicy::Shuffled}) {
    for (bool IncludeStores : {false, true}) {
      MissStreamOptions Options;
      Options.IncludeStores = IncludeStores;
      // Page mappers are stateful (first-touch order): each collector
      // run gets its own, exactly as the profiler does.
      PageMapper SeqMapper(Mapping);
      const std::vector<MissEvent> Sequential =
          collectL2MissStream(T, L1, L2, SeqMapper, Options);

      for (unsigned Shards : {2u, 7u}) {
        ThreadBudget Budget(4);
        SimContext Ctx;
        Ctx.Pool = &Pool;
        Ctx.Budget = &Budget;
        Ctx.Shards = Shards;
        Ctx.MinRefsToShard = 0;
        PageMapper ParMapper(Mapping);
        EXPECT_EQ(
            collectL2MissStreamParallel(T, L1, L2, ParMapper, Options, Ctx),
            Sequential)
            << "mapping " << static_cast<int>(Mapping) << ", stores "
            << IncludeStores << ", " << Shards << " shard(s)";
        EXPECT_EQ(Budget.available(), 4u);
      }
    }
  }
}

TEST(CacheShardExactnessTest, L2StageTwoShardsWithExactAccounting) {
  // The L2 collector's stage-2 replay shards by L2 set since the
  // route-once rework; its grant must bump the dedicated counter — not
  // ShardedSims, which would double-count one collection — and the
  // stream must stay identical to the sequential collector at every
  // shard shape and page mapping.
  const CacheGeometry L1 = testGeometry();
  const CacheGeometry L2(32 * 1024, 64, 4);
  const Trace T = makeTrace(60'000);

  ThreadPool Pool(3);
  for (PagePolicy Mapping :
       {PagePolicy::Identity, PagePolicy::FirstTouch, PagePolicy::Shuffled}) {
    MissStreamOptions Options;
    PageMapper SeqMapper(Mapping);
    const std::vector<MissEvent> Sequential =
        collectL2MissStream(T, L1, L2, SeqMapper, Options);

    for (unsigned Shards : {2u, 4u, 7u}) {
      ThreadBudget Budget(4);
      ShardExecStats Stats;
      SimContext Ctx;
      Ctx.Pool = &Pool;
      Ctx.Budget = &Budget;
      Ctx.Stats = &Stats;
      Ctx.Shards = Shards;
      Ctx.MinRefsToShard = 0;
      PageMapper ParMapper(Mapping);
      EXPECT_EQ(
          collectL2MissStreamParallel(T, L1, L2, ParMapper, Options, Ctx),
          Sequential)
          << "mapping " << static_cast<int>(Mapping) << ", " << Shards
          << " shard(s)";
      EXPECT_EQ(Stats.ShardedSims.load(), 1u);          // stage 1 only
      EXPECT_EQ(Stats.L2StageShardedSims.load(), 1u);   // stage 2 only
      EXPECT_EQ(Budget.available(), 4u);
    }
  }
}

TEST(CacheShardExactnessTest, FusedRouterProducesIdenticalPartitions) {
  // The fused single-pass router must produce byte-for-byte the same
  // arena and offsets as the count+scatter pass and the sequential
  // reference, at every plan width and helper count.
  const CacheGeometry Geometry = testGeometry();
  const Trace T = makeTrace(50'000);
  ThreadPool Pool(3);
  for (unsigned ShardCount : {1u, 2u, 3u, 7u, 64u}) {
    const std::vector<SetRange> Plan =
        planShards(Geometry.numSets(), ShardCount);
    const ShardPartition Sequential =
        partitionBySet(T.records(), Geometry, Plan);
    for (unsigned Helpers : {0u, 1u, 3u}) {
      const ShardPartition Cs = partitionBySetParallel(
          T.records(), Geometry, Plan, Pool, Helpers);
      const ShardPartition Fused =
          partitionBySetFused(T.records(), Geometry, Plan, Pool, Helpers);
      EXPECT_EQ(Cs.Arena, Sequential.Arena)
          << ShardCount << " shard(s), " << Helpers << " helper(s)";
      EXPECT_EQ(Cs.Offsets, Sequential.Offsets);
      EXPECT_EQ(Fused.Arena, Sequential.Arena)
          << ShardCount << " shard(s), " << Helpers << " helper(s)";
      EXPECT_EQ(Fused.Offsets, Sequential.Offsets);
    }
  }

  // End to end: a collector run routed through the fused router is
  // still exact.
  MissStreamOptions Options;
  Options.IncludeStores = true;
  const std::vector<MissEvent> Sequential =
      collectL1MissStream(T, Geometry, Options);
  ThreadBudget Budget(4);
  SimContext Ctx;
  Ctx.Pool = &Pool;
  Ctx.Budget = &Budget;
  Ctx.Shards = 4;
  Ctx.MinRefsToShard = 0;
  Ctx.Router = PartitionRouter::Fused;
  EXPECT_EQ(collectL1MissStreamParallel(T, Geometry, Options, Ctx),
            Sequential);
}

TEST(CacheShardExactnessTest, RandomPolicyFallsBackToSequential) {
  const CacheGeometry Geometry = testGeometry();
  const Trace T = makeTrace(30'000);
  MissStreamOptions Options;
  Options.Policy = ReplacementKind::Random;
  const std::vector<MissEvent> Sequential =
      collectL1MissStream(T, Geometry, Options);

  ThreadPool Pool(3);
  ThreadBudget Budget(4);
  SimContext Ctx;
  Ctx.Pool = &Pool;
  Ctx.Budget = &Budget;
  Ctx.Shards = 7;
  Ctx.MinRefsToShard = 0;
  // Random draws from a cache-global RNG whose consumption order
  // depends on cross-set interleaving; the collector must refuse to
  // shard it and still reproduce the sequential stream.
  EXPECT_EQ(collectL1MissStreamParallel(T, Geometry, Options, Ctx),
            Sequential);
  EXPECT_EQ(Budget.available(), 4u);
}

TEST(CacheShardExactnessTest, ShortTracesStaySequential) {
  const CacheGeometry Geometry = testGeometry();
  const Trace T = makeTrace(1'000);
  MissStreamOptions Options;
  const std::vector<MissEvent> Sequential =
      collectL1MissStream(T, Geometry, Options);

  ThreadPool Pool(3);
  SimContext Ctx;
  Ctx.Pool = &Pool;
  Ctx.Shards = 4;
  // Default MinRefsToShard (64k) far exceeds the trace: the gate must
  // short-circuit without touching pool or budget, and stay exact.
  EXPECT_EQ(collectL1MissStreamParallel(T, Geometry, Options, Ctx),
            Sequential);
}

TEST(CacheShardExactnessTest, BatchArtifactsAreByteIdenticalAcrossShapes) {
  BatchMatrix Matrix;
  Matrix.Workloads = {"Symmetrization"};
  Matrix.Periods = {606, 1212};
  Matrix.Levels = {ProfileLevel::L1, ProfileLevel::L2};
  const std::vector<JobSpec> Jobs = expandMatrix(Matrix);
  ASSERT_GE(Jobs.size(), 4u);

  // Ground truth: the naive engine, one full simulation per job.
  const std::string Naive = serializeAll(runJobs(Jobs, 1));

  // Legacy shared-trace entry point, sequential and threaded.
  EXPECT_EQ(serializeAll(runJobsShared(Jobs, 1u)), Naive);
  EXPECT_EQ(serializeAll(runJobsShared(Jobs, 2u)), Naive);

  // The sharded engine at several execution shapes, forcing sharding
  // on every simulation (MinRefsToShard = 0).
  const auto MakeExec = [](unsigned Workers, unsigned SimThreads,
                           unsigned Shards) {
    BatchExecOptions Exec;
    Exec.Workers = Workers;
    Exec.SimThreads = SimThreads;
    Exec.Shards = Shards;
    Exec.MinRefsToShard = 0;
    return Exec;
  };
  for (const BatchExecOptions &Exec :
       {MakeExec(1, 4, 0), MakeExec(2, 4, 3), MakeExec(4, 2, 0),
        MakeExec(1, 1, 5)}) {
    SharedBatchStats Stats;
    EXPECT_EQ(serializeAll(runJobsShared(Jobs, Exec, 0, nullptr, nullptr,
                                         &Stats)),
              Naive)
        << "Workers=" << Exec.Workers << " SimThreads=" << Exec.SimThreads
        << " Shards=" << Exec.Shards;
    EXPECT_GT(Stats.TraceGroups, 0u);
  }
}

TEST(CacheShardExactnessTest, ParallelPartitionMatchesSequential) {
  const CacheGeometry Geometry = testGeometry();
  // Big enough for several 32k-record chunks, odd enough that the
  // chunk grid never divides evenly.
  const Trace T = makeTrace(200'001);

  ThreadPool Pool(3);
  for (unsigned K : {2u, 3u, 7u, 64u}) {
    const std::vector<SetRange> Plan = planShards(Geometry.numSets(), K);
    const ShardPartition Sequential =
        partitionBySet(T.records(), Geometry, Plan);
    const std::vector<std::vector<ShardRef>> Oracle =
        partition(T, Geometry, Plan);

    // The flat arena must hold exactly the per-shard vectors of the
    // naive router, shard for shard, record for record.
    ASSERT_EQ(Sequential.numShards(), Plan.size());
    EXPECT_EQ(Sequential.totalRefs(), T.size());
    for (size_t S = 0; S < Plan.size(); ++S) {
      const std::span<const ShardRef> Shard = Sequential.shard(S);
      ASSERT_EQ(Shard.size(), Oracle[S].size()) << K << " shards, shard " << S;
      EXPECT_TRUE(std::equal(Shard.begin(), Shard.end(), Oracle[S].begin()))
          << K << " shards, shard " << S;
    }

    // The chunked parallel router must reproduce the sequential arena
    // bit for bit at every helper count (0 = all chunks in the caller).
    for (unsigned Helpers : {0u, 1u, 3u}) {
      const ShardPartition Parallel = partitionBySetParallel(
          T.records(), Geometry, Plan, Pool, Helpers);
      EXPECT_EQ(Parallel.Offsets, Sequential.Offsets)
          << K << " shards, " << Helpers << " helper(s)";
      EXPECT_EQ(Parallel.Arena, Sequential.Arena)
          << K << " shards, " << Helpers << " helper(s)";
    }
  }
}

TEST(CacheShardExactnessTest, MergeSegmentationMatchesPlainMerge) {
  // Lists long enough to cross the merge-path segmentation threshold
  // (64k entries per segment), with deliberately lopsided sizes and
  // an odd list count so one list carries over between rounds. Values
  // are globally unique, as shard miss sequence numbers always are.
  std::vector<std::vector<uint64_t>> Lists(5);
  uint64_t V = 0;
  for (size_t Round = 0; Round < 200'000; ++Round)
    for (size_t L = 0; L < Lists.size(); ++L)
      if (Round < 100'000 + 40'000 * L)
        Lists[L].push_back(V++);

  std::vector<uint64_t> Expected;
  for (const std::vector<uint64_t> &L : Lists)
    Expected.insert(Expected.end(), L.begin(), L.end());
  std::sort(Expected.begin(), Expected.end());

  ThreadPool Pool(3);
  std::vector<std::vector<uint64_t>> Parallel = Lists;
  EXPECT_EQ(mergeMissSeqs(Parallel, &Pool, 3), Expected);
  // The merge drains its inputs (move semantics, satellite of the
  // single-shard copy fix) — spent lists must not linger.
  for (const std::vector<uint64_t> &L : Parallel)
    EXPECT_TRUE(L.empty());

  std::vector<std::vector<uint64_t>> Sequential = Lists;
  EXPECT_EQ(mergeMissSeqs(Sequential), Expected);

  // Single-shard path: moved out wholesale, never copied.
  std::vector<std::vector<uint64_t>> One(1);
  One[0] = Lists[0];
  const uint64_t *Data = One[0].data();
  const std::vector<uint64_t> Merged = mergeMissSeqs(One);
  EXPECT_EQ(Merged.data(), Data) << "single-shard merge must move";
  EXPECT_EQ(Merged, Lists[0]);
}

TEST(CacheShardExactnessTest, AggregateCollectorMatchesStreamAggregates) {
  const CacheGeometry Geometry = testGeometry();
  const Trace T = makeTrace(80'000);

  ThreadPool Pool(3);
  ShardCachePool CachePool;
  for (ReplacementKind Policy :
       {ReplacementKind::Lru, ReplacementKind::Fifo,
        ReplacementKind::TreePlru}) {
    for (bool IncludeStores : {false, true}) {
      MissStreamOptions Options;
      Options.Policy = Policy;
      Options.IncludeStores = IncludeStores;
      const MissStreamAggregates Sequential =
          collectL1MissAggregates(T, Geometry, Options);
      const std::vector<MissEvent> Stream =
          collectL1MissStream(T, Geometry, Options);

      // The sequential aggregates must agree with the ordered stream
      // and the reference model before they can anchor the sharded
      // comparison.
      EXPECT_EQ(Sequential.Accesses, T.size());
      EXPECT_EQ(Sequential.Events, Stream.size());
      EXPECT_EQ(Sequential.Misses,
                Sequential.LoadMisses + Sequential.StoreMisses);
      ReferenceCache Oracle(Geometry, Policy);
      for (const MemoryRecord &R : T.records())
        Oracle.access(R.Addr, R.IsWrite);
      ASSERT_EQ(Sequential.PerSetMisses.size(), Geometry.numSets());
      for (uint64_t Set = 0; Set < Geometry.numSets(); ++Set)
        ASSERT_EQ(Sequential.PerSetMisses[Set], Oracle.missesOnSet(Set))
            << "set " << Set;

      // Merge elision: the sharded aggregate path must reproduce the
      // sequential aggregates exactly, at every shard count, without
      // ever building the ordered stream.
      for (unsigned Shards : {2u, 3u, 7u, 64u}) {
        ThreadBudget Budget(4);
        ShardExecStats Stats;
        SimContext Ctx;
        Ctx.Pool = &Pool;
        Ctx.Budget = &Budget;
        Ctx.CachePool = &CachePool;
        Ctx.Stats = &Stats;
        Ctx.Shards = Shards;
        Ctx.MinRefsToShard = 0;
        EXPECT_EQ(collectL1MissAggregates(T, Geometry, Options, Ctx),
                  Sequential)
            << "policy " << static_cast<int>(Policy) << ", stores "
            << IncludeStores << ", " << Shards << " shard(s)";
        EXPECT_EQ(Stats.ElidedMerges.load(), 1u);
        EXPECT_EQ(Budget.available(), 4u);
      }
    }
  }
}

TEST(CacheShardExactnessTest, UnhelpedExplicitShardsAreCountedDegraded) {
  const CacheGeometry Geometry = testGeometry();
  const Trace T = makeTrace(70'000);
  const MissStreamOptions Options;
  const std::vector<MissEvent> Sequential =
      collectL1MissStream(T, Geometry, Options);

  ThreadPool Pool(3);
  ThreadBudget Budget(4);
  // Drain the budget: every slot is busy elsewhere, exactly the state
  // of a batch whose workers cover the machine.
  ASSERT_EQ(Budget.tryAcquire(4), 4u);

  ShardExecStats Stats;
  SimContext Ctx;
  Ctx.Pool = &Pool;
  Ctx.Budget = &Budget;
  Ctx.Stats = &Stats;
  Ctx.MinRefsToShard = 0;

  // Automatic shard count on an exhausted budget: the gate declines to
  // shard at all, and nothing is counted.
  Ctx.Shards = 0;
  EXPECT_EQ(collectL1MissStreamParallel(T, Geometry, Options, Ctx),
            Sequential);
  EXPECT_EQ(Stats.ShardedSims.load(), 0u);

  // An explicit --shards 4 is still honored: the caller's thread
  // partitions and replays all four shards back to back (degraded
  // serialized mode), the run is counted as sharded-but-unhelped, and
  // the stream stays byte-identical.
  Ctx.Shards = 4;
  EXPECT_EQ(collectL1MissStreamParallel(T, Geometry, Options, Ctx),
            Sequential);
  EXPECT_EQ(Stats.ShardedSims.load(), 1u);
  EXPECT_EQ(Stats.UnhelpedShardedSims.load(), 1u);
  EXPECT_EQ(Budget.available(), 0u) << "no slot may leak back";

  // With the budget refilled the same context shards with helpers:
  // counted as sharded, not as degraded.
  Budget.release(4);
  EXPECT_EQ(collectL1MissStreamParallel(T, Geometry, Options, Ctx),
            Sequential);
  EXPECT_EQ(Stats.ShardedSims.load(), 2u);
  EXPECT_EQ(Stats.UnhelpedShardedSims.load(), 1u);
  EXPECT_EQ(Budget.available(), 4u);
}

TEST(CacheShardExactnessTest, ShardCachePoolBucketsByConfig) {
  const CacheGeometry Small = testGeometry();          // 64 sets, 2-way
  const CacheGeometry Big(32 * 1024, 64, 4);           // 128 sets, 4-way
  const SetRange WinA{0, 16}, WinB{16, 32}, Wide{0, 32};

  ShardCachePool Pool;
  // Park one cache per distinct (geometry, policy, window-width)
  // bucket, plus a second LRU/Small/16 instance.
  Pool.park(std::make_unique<Cache>(Small, WinA, ReplacementKind::Lru));
  Pool.park(std::make_unique<Cache>(Small, WinB, ReplacementKind::Lru));
  Pool.park(std::make_unique<Cache>(Small, WinA, ReplacementKind::Fifo));
  Pool.park(std::make_unique<Cache>(Big, WinA, ReplacementKind::Lru));
  Pool.park(std::make_unique<Cache>(Small, Wide, ReplacementKind::Lru));
  EXPECT_EQ(Pool.parked(), 5u);

  // Same geometry, same policy, same window width, different window
  // *position*: reusable — the pool rewinds the window.
  std::unique_ptr<Cache> R1 =
      Pool.acquire(Small, ReplacementKind::Lru, SetRange{32, 48});
  EXPECT_EQ(Pool.reuses(), 1u);
  EXPECT_EQ(Pool.parked(), 4u);
  EXPECT_EQ(R1->window(), (SetRange{32, 48}));

  // Both parked LRU/Small/16 instances drain before a miss.
  std::unique_ptr<Cache> R2 =
      Pool.acquire(Small, ReplacementKind::Lru, WinA);
  EXPECT_EQ(Pool.reuses(), 2u);
  EXPECT_EQ(Pool.parked(), 3u);

  // Bucket misses: fresh instances, no reuse counted — a different
  // policy, geometry, or window width never matches.
  Pool.acquire(Small, ReplacementKind::TreePlru, WinA);
  Pool.acquire(CacheGeometry(4096, 64, 2), ReplacementKind::Lru, WinA);
  Pool.acquire(Small, ReplacementKind::Lru, SetRange{0, 8});
  EXPECT_EQ(Pool.reuses(), 2u);
  EXPECT_EQ(Pool.parked(), 3u);

  // The remaining buckets (FIFO/Small/16, LRU/Big/16, LRU/Small/32)
  // each still serve exactly their own configuration.
  Pool.acquire(Small, ReplacementKind::Fifo, WinB);
  Pool.acquire(Big, ReplacementKind::Lru, WinB);
  Pool.acquire(Small, ReplacementKind::Lru, Wide);
  EXPECT_EQ(Pool.reuses(), 5u);
  EXPECT_EQ(Pool.parked(), 0u);
}

TEST(CacheShardExactnessTest, LargeTraceStreamIdenticalAcrossExecShapes) {
  const CacheGeometry Geometry = testGeometry();
  // Well past MinRecordsPerChunk and MinRefsToShard: the partition
  // runs chunked, the merge runs pairwise, and the rebuild runs
  // scattered — every parallel stage is on its real code path.
  const Trace T = makeTrace(600'000);
  MissStreamOptions Options;
  Options.IncludeStores = true;

  const std::vector<MissEvent> Sequential =
      collectL1MissStream(T, Geometry, Options);
  const MissStreamAggregates SeqAgg =
      collectL1MissAggregates(T, Geometry, Options);
  ASSERT_EQ(SeqAgg.Events, Sequential.size());

  for (unsigned Workers : {1u, 2u, 3u}) {
    ThreadPool Pool(Workers);
    ShardCachePool CachePool;
    for (unsigned Shards : {2u, 4u, 16u, 64u}) {
      ThreadBudget Budget(Workers + 1);
      SimContext Ctx;
      Ctx.Pool = &Pool;
      Ctx.Budget = &Budget;
      Ctx.CachePool = &CachePool;
      Ctx.Shards = Shards;
      Ctx.MinRefsToShard = 0;
      EXPECT_EQ(collectL1MissStreamParallel(T, Geometry, Options, Ctx),
                Sequential)
          << Workers << " worker(s), " << Shards << " shard(s)";
      EXPECT_EQ(collectL1MissAggregates(T, Geometry, Options, Ctx), SeqAgg)
          << Workers << " worker(s), " << Shards << " shard(s)";
      EXPECT_EQ(Budget.available(), Workers + 1);
    }
  }
}
