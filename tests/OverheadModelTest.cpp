//===- tests/OverheadModelTest.cpp - Overhead model unit tests ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pmu/OverheadModel.h"

#include "gtest/gtest.h"

using namespace ccprof;

TEST(OverheadModelTest, NoSamplesMeansNoOverhead) {
  OverheadConstants C;
  EXPECT_DOUBLE_EQ(profilingOverheadFactor(1.0, 0, C), 1.0);
  EXPECT_DOUBLE_EQ(simulationOverheadFactor(1.0, 0, C), 1.0);
}

TEST(OverheadModelTest, OverheadGrowsLinearlyWithSamples) {
  OverheadConstants C;
  C.SampleCostNs = 1000.0; // 1 microsecond per sample
  // 1e6 samples at 1us = 1 extra second on a 1-second run: 2x.
  EXPECT_NEAR(profilingOverheadFactor(1.0, 1'000'000, C), 2.0, 1e-9);
  EXPECT_NEAR(profilingOverheadFactor(1.0, 2'000'000, C), 3.0, 1e-9);
}

TEST(OverheadModelTest, SimulationDwarfsSampling) {
  // The paper's qualitative claim (Sec. 5.3): tracing every reference
  // costs orders of magnitude more than sampling every ~1212th miss.
  OverheadConstants C = {1800.0, 180.0};
  const double PlainSeconds = 0.01;
  const uint64_t Refs = 10'000'000;
  const uint64_t Misses = Refs / 20;    // 5% miss ratio
  const uint64_t Samples = Misses / 1212;
  double Profiling = profilingOverheadFactor(PlainSeconds, Samples, C);
  double Simulation = simulationOverheadFactor(PlainSeconds, Refs, C);
  EXPECT_LT(Profiling, 2.0);
  EXPECT_GT(Simulation, 50.0);
  EXPECT_GT(Simulation / Profiling, 25.0);
}

TEST(OverheadModelTest, HigherFrequencyCostsMore) {
  OverheadConstants C;
  const uint64_t Misses = 1'000'000;
  double At1212 = profilingOverheadFactor(0.01, Misses / 1212, C);
  double At171 = profilingOverheadFactor(0.01, Misses / 171, C);
  EXPECT_GT(At171, At1212) << "paper Fig. 8: accuracy costs overhead";
}

TEST(OverheadModelTest, CalibrationProducesSaneConstants) {
  OverheadConstants C = calibrateOverheadConstants();
  // The handler is at least the bare interrupt cost and below 1ms.
  EXPECT_GT(C.SampleCostNs, InterruptEntryExitNs);
  EXPECT_LT(C.SampleCostNs, 1e6);
  // One simulated reference costs at least the Pin callback and well
  // under a millisecond.
  EXPECT_GT(C.TraceSimCostNs, PinCallbackNs);
  EXPECT_LT(C.TraceSimCostNs, 1e6);
}
