//===- tests/BinaryIOTest.cpp - Binary codec and atomic-write tests -------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Locks down the wire-level contracts every on-disk format builds on:
// explicit little-endian byte layout, CRC-32 check values, ByteReader
// bounds behavior (including the readString edge cases), and the
// crash-equivalence property of atomicWriteFile.
//
//===----------------------------------------------------------------------===//

#include "trace/BinaryIO.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace ccprof;
namespace fs = std::filesystem;

namespace {

std::string bytesOf(const std::function<void(std::ostream &)> &Write) {
  std::ostringstream Out;
  Write(Out);
  return Out.str();
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return bio::readAll(In);
}

/// Fresh scratch directory per test.
class AtomicWriteTest : public ::testing::Test {
protected:
  void SetUp() override {
    // One directory per test case: ctest runs the cases as parallel
    // processes, and a shared path would let one case's SetUp wipe
    // another's files mid-test.
    const char *Case =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    Dir = (fs::path(::testing::TempDir()) /
           (std::string("ccprof-atomic-test-") + Case))
              .string();
    fs::remove_all(Dir);
    fs::create_directories(Dir);
  }
  void TearDown() override { fs::remove_all(Dir); }

  std::string path(const std::string &Name) const {
    return (fs::path(Dir) / Name).string();
  }

  std::string Dir;
};

} // namespace

//===----------------------------------------------------------------------===//
// Little-endian encoding
//===----------------------------------------------------------------------===//

TEST(BinaryIOTest, EncodesLittleEndianByteOrder) {
  // The format guarantees these exact bytes on every host.
  std::string U32 = bytesOf([](std::ostream &O) {
    bio::writeU32(O, 0x04030201u);
  });
  EXPECT_EQ(U32, std::string("\x01\x02\x03\x04", 4));

  std::string U64 = bytesOf([](std::ostream &O) {
    bio::writeU64(O, 0x0807060504030201ull);
  });
  EXPECT_EQ(U64, std::string("\x01\x02\x03\x04\x05\x06\x07\x08", 8));

  std::string Str = bytesOf([](std::ostream &O) {
    bio::writeString(O, "ab");
  });
  EXPECT_EQ(Str, std::string("\x02\x00\x00\x00"
                             "ab",
                             6));
}

TEST(BinaryIOTest, RoundTripsThroughByteReader) {
  std::string Bytes = bytesOf([](std::ostream &O) {
    bio::writeU32(O, 0xDEADBEEFu);
    bio::writeU64(O, 0x123456789ABCDEF0ull);
    bio::writeF64(O, -1234.5678);
    bio::writeString(O, "conflict");
    bio::writeString(O, "");
  });

  bio::ByteReader Reader(Bytes);
  uint32_t U32 = 0;
  uint64_t U64 = 0;
  double F64 = 0;
  std::string A, B;
  ASSERT_TRUE(Reader.readU32(U32));
  ASSERT_TRUE(Reader.readU64(U64));
  ASSERT_TRUE(Reader.readF64(F64));
  ASSERT_TRUE(Reader.readString(A));
  ASSERT_TRUE(Reader.readString(B));
  EXPECT_EQ(U32, 0xDEADBEEFu);
  EXPECT_EQ(U64, 0x123456789ABCDEF0ull);
  EXPECT_DOUBLE_EQ(F64, -1234.5678);
  EXPECT_EQ(A, "conflict");
  EXPECT_EQ(B, "");
  EXPECT_TRUE(Reader.atEnd());
  EXPECT_EQ(Reader.remaining(), 0u);
}

TEST(BinaryIOTest, ReadsFailAtEndWithoutConsuming) {
  std::string Bytes = bytesOf([](std::ostream &O) { bio::writeU32(O, 7); });
  bio::ByteReader Reader(std::string_view(Bytes).substr(0, 3));
  uint32_t Value = 99;
  EXPECT_FALSE(Reader.readU32(Value));
  EXPECT_EQ(Reader.remaining(), 3u) << "failed read must not consume";
  uint64_t Big = 0;
  EXPECT_FALSE(Reader.readU64(Big));
  double D = 0;
  EXPECT_FALSE(Reader.readF64(D));
}

//===----------------------------------------------------------------------===//
// readString edge cases
//===----------------------------------------------------------------------===//

TEST(BinaryIOTest, ReadStringZeroLengthAtEofSucceeds) {
  // Exactly a zero count and nothing after it: a valid empty string.
  std::string Bytes = bytesOf([](std::ostream &O) { bio::writeU32(O, 0); });
  bio::ByteReader Reader(Bytes);
  std::string Value = "poison";
  EXPECT_TRUE(Reader.readString(Value));
  EXPECT_EQ(Value, "");
  EXPECT_TRUE(Reader.atEnd());
}

TEST(BinaryIOTest, ReadStringRejectsOversizedCount) {
  std::string Bytes = bytesOf([](std::ostream &O) {
    bio::writeU32(O, bio::MaxStringBytes + 1);
  });
  Bytes += std::string(64, 'x'); // some payload, far less than claimed
  bio::ByteReader Reader(Bytes);
  std::string Value;
  EXPECT_FALSE(Reader.readString(Value));
}

TEST(BinaryIOTest, ReadStringRejectsCountBeyondRemainingBytes) {
  // Claims 16 bytes, carries 3: must fail without touching bytes 4..6.
  std::string Bytes = bytesOf([](std::ostream &O) { bio::writeU32(O, 16); });
  Bytes += "abc";
  bio::ByteReader Reader(Bytes);
  std::string Value;
  EXPECT_FALSE(Reader.readString(Value));
}

TEST(BinaryIOTest, FitsBoundsCountsByRemainingBytes) {
  std::string Bytes(32, '\0');
  bio::ByteReader Reader(Bytes);
  EXPECT_TRUE(Reader.fits(2, 16));
  EXPECT_TRUE(Reader.fits(4, 8));
  EXPECT_FALSE(Reader.fits(3, 16));
  EXPECT_FALSE(Reader.fits(UINT64_MAX, 8));
  EXPECT_TRUE(Reader.fits(0, 16));
}

//===----------------------------------------------------------------------===//
// CRC-32
//===----------------------------------------------------------------------===//

TEST(BinaryIOTest, Crc32MatchesKnownCheckValues) {
  // The standard CRC-32/IEEE check value.
  EXPECT_EQ(bio::crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(bio::crc32(std::string_view("")), 0x00000000u);
  // Seeded chaining equals one pass over the concatenation.
  std::string_view All("lightweight cache conflicts");
  uint32_t Chained =
      bio::crc32(All.substr(11), bio::crc32(All.substr(0, 11)));
  EXPECT_EQ(Chained, bio::crc32(All));
}

TEST(BinaryIOTest, Crc32DetectsSingleBitFlips) {
  std::string Bytes = bytesOf([](std::ostream &O) {
    for (uint32_t I = 0; I < 64; ++I)
      bio::writeU32(O, I * 2654435761u);
  });
  uint32_t Clean = bio::crc32(Bytes);
  for (size_t Byte = 0; Byte < Bytes.size(); ++Byte)
    for (int Bit = 0; Bit < 8; ++Bit) {
      Bytes[Byte] ^= char(1 << Bit);
      EXPECT_NE(bio::crc32(Bytes), Clean)
          << "flip at byte " << Byte << " bit " << Bit << " went undetected";
      Bytes[Byte] ^= char(1 << Bit);
    }
}

//===----------------------------------------------------------------------===//
// Atomic file replacement
//===----------------------------------------------------------------------===//

TEST_F(AtomicWriteTest, WritesContentAndLeavesNoTemp) {
  std::string Target = path("a.bin");
  std::string Error;
  ASSERT_TRUE(bio::atomicWriteFile(Target, "hello artifact", &Error))
      << Error;
  EXPECT_EQ(slurp(Target), "hello artifact");
  EXPECT_FALSE(fs::exists(Target + bio::AtomicTempSuffix));
}

TEST_F(AtomicWriteTest, ReplacesExistingFile) {
  std::string Target = path("a.bin");
  ASSERT_TRUE(bio::atomicWriteFile(Target, "old"));
  ASSERT_TRUE(bio::atomicWriteFile(Target, "new and longer"));
  EXPECT_EQ(slurp(Target), "new and longer");
}

TEST_F(AtomicWriteTest, WritesEmptyPayload) {
  std::string Target = path("empty.bin");
  ASSERT_TRUE(bio::atomicWriteFile(Target, ""));
  EXPECT_TRUE(fs::exists(Target));
  EXPECT_EQ(fs::file_size(Target), 0u);
}

TEST_F(AtomicWriteTest, FailsCleanlyWhenDirectoryMissing) {
  std::string Target = path("no/such/dir/a.bin");
  std::string Error;
  EXPECT_FALSE(bio::atomicWriteFile(Target, "x", &Error));
  EXPECT_FALSE(Error.empty());
}

TEST_F(AtomicWriteTest, CrashAtEveryWriteBoundaryNeverCorruptsTarget) {
  // The acceptance property: interrupting the save at ANY write
  // boundary leaves either the previous file or no file at the final
  // path — never a partial one. 3-byte chunks make every boundary of
  // the payload a crash site.
  const std::string Old = "PREVIOUS-ARTIFACT-CONTENT";
  const std::string New = "REPLACEMENT-PAYLOAD-WITH-DIFFERENT-BYTES";
  std::string Target = path("artifact.bin");

  for (bool PreexistingTarget : {false, true}) {
    size_t Boundaries = (New.size() + 2) / 3;
    for (size_t CrashAfter = 1; CrashAfter <= Boundaries; ++CrashAfter) {
      fs::remove(Target);
      fs::remove(Target + bio::AtomicTempSuffix);
      if (PreexistingTarget) {
        ASSERT_TRUE(bio::atomicWriteFile(Target, Old));
      }

      bio::AtomicWriteOptions Options;
      Options.ChunkBytes = 3;
      size_t Chunks = 0;
      Options.CrashAt = [&](size_t) { return ++Chunks == CrashAfter; };
      std::string Error;
      EXPECT_FALSE(bio::atomicWriteFile(Target, New, &Error, Options));
      EXPECT_FALSE(Error.empty());

      if (PreexistingTarget)
        EXPECT_EQ(slurp(Target), Old)
            << "crash after chunk " << CrashAfter
            << " must leave the previous file intact";
      else
        EXPECT_FALSE(fs::exists(Target))
            << "crash after chunk " << CrashAfter
            << " must not publish anything";

      // Recovery: the next save wins and clears the stale temp the
      // simulated crash left behind.
      ASSERT_TRUE(bio::atomicWriteFile(Target, New, &Error)) << Error;
      EXPECT_EQ(slurp(Target), New);
      EXPECT_FALSE(fs::exists(Target + bio::AtomicTempSuffix));
    }
  }
}
