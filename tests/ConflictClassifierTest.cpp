//===- tests/ConflictClassifierTest.cpp - Classifier tests -----------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/ConflictClassifier.h"

#include "gtest/gtest.h"

using namespace ccprof;

TEST(ConflictClassifierTest, PretrainedSeparatesPaperRanges) {
  // Sec. 5.1: clean Rodinia loops put 10-20% of misses below RCD 8;
  // NW puts 88% there.
  ConflictClassifier C = ConflictClassifier::pretrained();
  EXPECT_FALSE(C.classify(0.10).Conflict);
  EXPECT_FALSE(C.classify(0.20).Conflict);
  EXPECT_TRUE(C.classify(0.88).Conflict);
  EXPECT_TRUE(C.classify(0.99).Conflict);
}

TEST(ConflictClassifierTest, ProbabilityTracksVerdict) {
  ConflictClassifier C = ConflictClassifier::pretrained();
  ConflictClassifier::Decision Low = C.classify(0.05);
  ConflictClassifier::Decision High = C.classify(0.95);
  EXPECT_LT(Low.Probability, 0.5);
  EXPECT_GT(High.Probability, 0.5);
  EXPECT_EQ(Low.Conflict, Low.Probability >= 0.5);
  EXPECT_EQ(High.Conflict, High.Probability >= 0.5);
}

TEST(ConflictClassifierTest, TrainOnCustomLoops) {
  std::vector<LabeledLoop> Loops = {
      {"a", 0.01, false}, {"b", 0.02, false}, {"c", 0.9, true},
      {"d", 0.95, true},  {"e", 0.05, false}, {"f", 0.85, true},
  };
  ConflictClassifier C;
  EXPECT_FALSE(C.isTrained());
  C.train(Loops);
  EXPECT_TRUE(C.isTrained());
  EXPECT_FALSE(C.classify(0.03).Conflict);
  EXPECT_TRUE(C.classify(0.92).Conflict);
}

TEST(ConflictClassifierTest, ClassifyProfileUsesThreshold) {
  // Build a profile that hammers one set: cf at threshold 8 is ~1.
  RcdProfile Victim(64);
  for (int I = 0; I < 200; ++I)
    Victim.addMiss(3);
  ConflictClassifier C = ConflictClassifier::pretrained();
  EXPECT_TRUE(C.classifyProfile(Victim).Conflict);

  // Balanced round-robin: cf 0.
  RcdProfile Balanced(64);
  for (int Round = 0; Round < 5; ++Round)
    for (uint64_t Set = 0; Set < 64; ++Set)
      Balanced.addMiss(Set);
  EXPECT_FALSE(C.classifyProfile(Balanced).Conflict);
}

TEST(ConflictClassifierTest, Table1DecisionMatrix) {
  // Paper Table 1, realized by the trained model:
  //   low RCD (=> high cf) + high miss contribution => conflict;
  //   high RCD (=> low cf) => no conflict.
  ConflictClassifier C = ConflictClassifier::pretrained();
  // "low RCD, high contribution": strong indication.
  EXPECT_TRUE(C.classify(0.9).Conflict);
  // "high RCD": no indication regardless of contribution.
  EXPECT_FALSE(C.classify(0.05).Conflict);
}

TEST(ConflictClassifierTest, CustomRcdThreshold) {
  ConflictClassifier C(16);
  EXPECT_EQ(C.rcdThreshold(), 16u);
  ConflictClassifier Default = ConflictClassifier::pretrained();
  EXPECT_EQ(Default.rcdThreshold(), ConflictClassifier::DefaultRcdThreshold);
  EXPECT_EQ(ConflictClassifier::DefaultRcdThreshold, 8u);
}
