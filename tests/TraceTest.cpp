//===- tests/TraceTest.cpp - Trace container and serialization tests ------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace ccprof;

TEST(TraceTest, RecordLoadsAndStores) {
  Trace T;
  SiteId S = T.site("a.cpp", 10, "f");
  double X = 0.0;
  T.load(S, &X);
  T.store(S, &X);
  ASSERT_EQ(T.size(), 2u);
  EXPECT_FALSE(T.records()[0].IsWrite);
  EXPECT_TRUE(T.records()[1].IsWrite);
  EXPECT_EQ(T.records()[0].SizeBytes, sizeof(double));
  EXPECT_EQ(T.records()[0].Addr, reinterpret_cast<uint64_t>(&X));
  EXPECT_EQ(T.records()[0].Site, S);
}

TEST(TraceTest, AllocationsAreQueryable) {
  Trace T;
  int Buffer[64];
  T.registerAllocation("buffer", Buffer, sizeof(Buffer));
  auto Id = T.allocations().findByAddress(
      reinterpret_cast<uint64_t>(&Buffer[10]));
  ASSERT_TRUE(Id.has_value());
  EXPECT_EQ(T.allocations().info(*Id).Name, "buffer");
}

TEST(TraceTest, ClearRecordsKeepsRegistries) {
  Trace T;
  SiteId S = T.site("a.cpp", 1, "");
  int X = 0;
  T.load(S, &X);
  T.clearRecords();
  EXPECT_TRUE(T.empty());
  EXPECT_EQ(T.sites().size(), 1u);
}

TEST(TraceSerializationTest, RoundTrip) {
  Trace T;
  SiteId S1 = T.site("needle.cpp", 189, "needle_cpu");
  SiteId S2 = T.site("needle.cpp", 128, "needle_cpu");
  T.recordLoad(S1, 0xdeadbeef, 4);
  T.recordStore(S2, 0xcafef00d, 8);
  T.recordLoad(UnknownSite, 0x42, 2);
  int Buffer[4];
  T.registerAllocation("buf", Buffer, sizeof(Buffer));

  std::stringstream Stream;
  ASSERT_TRUE(T.writeTo(Stream));

  Trace Loaded;
  ASSERT_TRUE(Trace::readFrom(Stream, Loaded));
  ASSERT_EQ(Loaded.size(), 3u);
  EXPECT_EQ(Loaded.records()[0],
            (MemoryRecord{S1, 0xdeadbeef, 4, false}));
  EXPECT_EQ(Loaded.records()[1], (MemoryRecord{S2, 0xcafef00d, 8, true}));
  EXPECT_EQ(Loaded.records()[2], (MemoryRecord{UnknownSite, 0x42, 2, false}));

  const SourceSite *Site = Loaded.sites().lookup(S1);
  ASSERT_NE(Site, nullptr);
  EXPECT_EQ(Site->Line, 189u);

  auto Alloc = Loaded.allocations().findByAddress(
      reinterpret_cast<uint64_t>(&Buffer[2]));
  ASSERT_TRUE(Alloc.has_value());
  EXPECT_EQ(Loaded.allocations().info(*Alloc).Name, "buf");
}

TEST(TraceSerializationTest, RoundTripWithFreedAllocations) {
  Trace T;
  T.allocations().recordAllocation("first", 0x1000, 0x100);
  T.allocations().recordFree(0x1000);
  T.allocations().recordAllocation("second", 0x1000, 0x80);

  std::stringstream Stream;
  ASSERT_TRUE(T.writeTo(Stream));
  Trace Loaded;
  ASSERT_TRUE(Trace::readFrom(Stream, Loaded));
  ASSERT_EQ(Loaded.allocations().size(), 2u);
  EXPECT_FALSE(Loaded.allocations().info(0).Live);
  EXPECT_TRUE(Loaded.allocations().info(1).Live);
  auto Id = Loaded.allocations().findByAddress(0x1040);
  ASSERT_TRUE(Id.has_value());
  EXPECT_EQ(Loaded.allocations().info(*Id).Name, "second");
}

TEST(TraceSerializationTest, RejectsGarbage) {
  std::stringstream Stream("this is not a trace file");
  Trace Loaded;
  std::string Error;
  EXPECT_FALSE(Trace::readFrom(Stream, Loaded, &Error));
  EXPECT_NE(Error.find("magic"), std::string::npos) << Error;
}

TEST(TraceSerializationTest, RejectsEmptyStreamWithClearError) {
  std::stringstream Stream;
  Trace Loaded;
  std::string Error;
  EXPECT_FALSE(Trace::readFrom(Stream, Loaded, &Error));
  EXPECT_NE(Error.find("empty or too short"), std::string::npos) << Error;
}

TEST(TraceSerializationTest, RejectsWrongVersionWithClearError) {
  Trace T;
  T.recordLoad(T.site("a.cpp", 1, ""), 0x1234, 4);
  std::stringstream Stream;
  ASSERT_TRUE(T.writeTo(Stream));
  std::string Bytes = Stream.str();
  // Bump the version field (bytes 4..7) to an unsupported value.
  Bytes[4] = 99;
  std::stringstream Tampered(Bytes);
  Trace Loaded;
  std::string Error;
  EXPECT_FALSE(Trace::readFrom(Tampered, Loaded, &Error));
  EXPECT_NE(Error.find("version 99"), std::string::npos) << Error;
}

TEST(TraceSerializationTest, RejectsTruncatedStream) {
  Trace T;
  T.recordLoad(T.site("a.cpp", 1, ""), 0x1234, 4);
  std::stringstream Stream;
  ASSERT_TRUE(T.writeTo(Stream));
  std::string Bytes = Stream.str();
  for (size_t Cut : {Bytes.size() / 4, Bytes.size() / 2, Bytes.size() - 1}) {
    std::stringstream Truncated(Bytes.substr(0, Cut));
    Trace Partial;
    EXPECT_FALSE(Trace::readFrom(Truncated, Partial))
        << "cut at " << Cut << " of " << Bytes.size();
  }
}

TEST(TraceSerializationTest, EmptyTraceRoundTrips) {
  Trace T;
  std::stringstream Stream;
  ASSERT_TRUE(T.writeTo(Stream));
  Trace Loaded;
  ASSERT_TRUE(Trace::readFrom(Stream, Loaded));
  EXPECT_TRUE(Loaded.empty());
  EXPECT_EQ(Loaded.sites().size(), 0u);
}
