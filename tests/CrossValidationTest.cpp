//===- tests/CrossValidationTest.cpp - K-fold validation tests ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/CrossValidation.h"

#include "support/Rng.h"

#include "gtest/gtest.h"

#include <vector>

using namespace ccprof;

namespace {

/// The paper's training-set shape: 16 loops, 8 conflicting / 8 clean.
void paperStyleTrainingSet(double Separation, std::vector<double> &X,
                           std::vector<uint8_t> &Y) {
  Xoshiro256 Rng(0x16f01d);
  for (int I = 0; I < 8; ++I) {
    X.push_back(0.15 + 0.02 * static_cast<double>(I % 4) +
                0.01 * Rng.nextDouble());
    Y.push_back(0);
  }
  for (int I = 0; I < 8; ++I) {
    X.push_back(0.15 + Separation + 0.05 * static_cast<double>(I % 4) +
                0.01 * Rng.nextDouble());
    Y.push_back(1);
  }
}

} // namespace

TEST(CrossValidationTest, PerfectlySeparableGivesF1One) {
  std::vector<double> X;
  std::vector<uint8_t> Y;
  paperStyleTrainingSet(/*Separation=*/0.5, X, Y);
  CrossValidationOptions Options;
  Options.Folds = 8;
  BinaryConfusion Result = crossValidate(X, Y, Options);
  EXPECT_DOUBLE_EQ(Result.f1(), 1.0);
  EXPECT_EQ(Result.total(), 16u);
}

TEST(CrossValidationTest, EveryObservationEvaluatedOnce) {
  std::vector<double> X;
  std::vector<uint8_t> Y;
  paperStyleTrainingSet(0.5, X, Y);
  for (uint32_t Folds : {2u, 4u, 8u}) {
    CrossValidationOptions Options;
    Options.Folds = Folds;
    BinaryConfusion Result = crossValidate(X, Y, Options);
    EXPECT_EQ(Result.total(), X.size()) << "folds = " << Folds;
  }
}

TEST(CrossValidationTest, OverlappingClassesScoreBelowOne) {
  // Interleaved features: the classes overlap in [0.18, 0.38], so no
  // one-dimensional threshold achieves a perfect split.
  std::vector<double> X = {0.10, 0.30, 0.38, 0.40, 0.18, 0.12, 0.42, 0.20,
                           0.15, 0.35, 0.25, 0.45, 0.33, 0.28, 0.41, 0.22};
  std::vector<uint8_t> Y = {0, 1, 0, 1, 1, 0, 1, 0,
                            0, 1, 0, 1, 1, 0, 1, 0};
  CrossValidationOptions Options;
  Options.Folds = 4;
  BinaryConfusion Result = crossValidate(X, Y, Options);
  EXPECT_LT(Result.f1(), 1.0);
  EXPECT_GT(Result.f1(), 0.3) << "the trend is still learnable";
}

TEST(CrossValidationTest, DeterministicForFixedSeed) {
  std::vector<double> X;
  std::vector<uint8_t> Y;
  paperStyleTrainingSet(0.1, X, Y);
  CrossValidationOptions Options;
  Options.ShuffleSeed = 77;
  BinaryConfusion A = crossValidate(X, Y, Options);
  BinaryConfusion B = crossValidate(X, Y, Options);
  EXPECT_EQ(A.TruePositives, B.TruePositives);
  EXPECT_EQ(A.FalsePositives, B.FalsePositives);
  EXPECT_EQ(A.FalseNegatives, B.FalseNegatives);
  EXPECT_EQ(A.TrueNegatives, B.TrueNegatives);
}

TEST(CrossValidationTest, SmallerSeparationLowersF1) {
  // Mirrors Fig. 8's logic: noisier features (lower separation between
  // the classes) can only hurt the pooled F1-score.
  auto F1At = [](double Separation) {
    std::vector<double> X;
    std::vector<uint8_t> Y;
    paperStyleTrainingSet(Separation, X, Y);
    CrossValidationOptions Options;
    Options.Folds = 8;
    return crossValidate(X, Y, Options).f1();
  };
  EXPECT_GE(F1At(0.5), F1At(0.02));
}
