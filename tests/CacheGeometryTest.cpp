//===- tests/CacheGeometryTest.cpp - Address slicing unit tests -----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/CacheGeometry.h"
#include "sim/MachineConfig.h"
#include "support/Rng.h"

#include "gtest/gtest.h"

using namespace ccprof;

TEST(CacheGeometryTest, PaperL1Shape) {
  // 32KiB, 8-way, 64B lines => 64 sets (paper Sec. 5).
  CacheGeometry G = paperL1Geometry();
  EXPECT_EQ(G.sizeBytes(), 32u * 1024);
  EXPECT_EQ(G.lineBytes(), 64u);
  EXPECT_EQ(G.associativity(), 8u);
  EXPECT_EQ(G.numSets(), 64u);
  EXPECT_EQ(G.numLines(), 512u);
  EXPECT_EQ(G.setStrideBytes(), 4096u);
}

TEST(CacheGeometryTest, OffsetIndexTagSlicing) {
  CacheGeometry G(32 * 1024, 64, 8); // 64 sets
  // Address = tag | index | offset (Fig. 1).
  uint64_t Addr = (0xABCull << 12) | (17ull << 6) | 33;
  EXPECT_EQ(G.offsetOf(Addr), 33u);
  EXPECT_EQ(G.setIndexOf(Addr), 17u);
  EXPECT_EQ(G.tagOf(Addr), 0xABCu);
}

TEST(CacheGeometryTest, LineAddr) {
  CacheGeometry G(32 * 1024, 64, 8);
  EXPECT_EQ(G.lineAddrOf(0), 0u);
  EXPECT_EQ(G.lineAddrOf(63), 0u);
  EXPECT_EQ(G.lineAddrOf(64), 1u);
  EXPECT_EQ(G.lineAddrOf(4096 + 5), 64u);
}

TEST(CacheGeometryTest, LineStartAddrRoundTrips) {
  CacheGeometry G(32 * 1024, 64, 8);
  for (uint64_t Addr : {0ull, 64ull, 4095ull, 4096ull, 123456789ull}) {
    uint64_t Start = G.lineStartAddr(G.tagOf(Addr), G.setIndexOf(Addr));
    EXPECT_EQ(Start, Addr & ~uint64_t{63});
  }
}

TEST(CacheGeometryTest, ConsecutiveLinesWalkConsecutiveSets) {
  CacheGeometry G(32 * 1024, 64, 8);
  for (uint64_t Line = 0; Line < 200; ++Line)
    EXPECT_EQ(G.setIndexOf(Line * 64), Line % 64);
}

TEST(CacheGeometryTest, SetStrideMapsBackToSameSet) {
  CacheGeometry G(32 * 1024, 64, 8);
  uint64_t Base = 0x1234c0;
  EXPECT_EQ(G.setIndexOf(Base), G.setIndexOf(Base + G.setStrideBytes()));
  EXPECT_NE(G.tagOf(Base), G.tagOf(Base + G.setStrideBytes()));
}

TEST(CacheGeometryTest, NonPowerOfTwoSetCount) {
  // 20-way 35MiB LLC: 28672 sets, not a power of two.
  CacheGeometry G(35 * 1024 * 1024, 64, 20);
  EXPECT_EQ(G.numSets(), 28672u);
  // Modulo indexing must still partition lines correctly.
  for (uint64_t Line : {0ull, 1ull, 28671ull, 28672ull, 999999ull}) {
    uint64_t Addr = Line * 64 + 13;
    EXPECT_EQ(G.setIndexOf(Addr), Line % 28672);
    EXPECT_EQ(G.tagOf(Addr), Line / 28672);
    EXPECT_EQ(G.lineStartAddr(G.tagOf(Addr), G.setIndexOf(Addr)), Line * 64);
  }
}

TEST(CacheGeometryTest, DirectMappedAndFullyAssociativeExtremes) {
  CacheGeometry Direct(4096, 64, 1); // direct-mapped: 64 sets
  EXPECT_EQ(Direct.numSets(), 64u);
  CacheGeometry Fa(4096, 64, 64); // fully associative: 1 set
  EXPECT_EQ(Fa.numSets(), 1u);
  EXPECT_EQ(Fa.setIndexOf(0xdeadbeef), 0u);
}

TEST(CacheGeometryTest, DescribeMentionsShape) {
  std::string Desc = paperL1Geometry().describe();
  EXPECT_NE(Desc.find("32KiB"), std::string::npos);
  EXPECT_NE(Desc.find("8-way"), std::string::npos);
  EXPECT_NE(Desc.find("64 sets"), std::string::npos);
}

// Property sweep: slicing is a bijection over the address bits for many
// geometries.
class GeometrySweepTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t, uint32_t>> {
};

TEST_P(GeometrySweepTest, SliceAndReassemble) {
  auto [Size, Line, Assoc] = GetParam();
  CacheGeometry G(Size, Line, Assoc);
  SplitMix64 Rng(Size ^ Line ^ Assoc);
  for (int I = 0; I < 200; ++I) {
    uint64_t Addr = Rng.next() >> 8;
    uint64_t Reassembled =
        G.lineStartAddr(G.tagOf(Addr), G.setIndexOf(Addr)) + G.offsetOf(Addr);
    EXPECT_EQ(Reassembled, Addr);
    EXPECT_LT(G.setIndexOf(Addr), G.numSets());
    EXPECT_LT(G.offsetOf(Addr), G.lineBytes());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometrySweepTest,
    ::testing::Values(std::make_tuple(32 * 1024, 64, 8),
                      std::make_tuple(256 * 1024, 64, 4),
                      std::make_tuple(256 * 1024, 64, 8),
                      std::make_tuple(8 * 1024 * 1024, 64, 16),
                      std::make_tuple(35 * 1024 * 1024, 64, 20),
                      std::make_tuple(4096, 32, 2),
                      std::make_tuple(1024, 16, 1),
                      std::make_tuple(16 * 1024, 128, 16)));
