//===- tests/PipelineTest.cpp - Batch pipeline tests ----------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Covers the batch-profiling subsystem: artifact round-trips, merge
// determinism and weighting, diff symmetry and tolerance, parallel
// execution equivalence, and trace canonicalization.
//
//===----------------------------------------------------------------------===//

#include "pipeline/ArtifactStore.h"
#include "pipeline/Diff.h"
#include "pipeline/JobRunner.h"
#include "pipeline/Merge.h"
#include "pipeline/MissStreamCache.h"
#include "trace/Canonicalize.h"
#include "workloads/Workload.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <latch>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

using namespace ccprof;

namespace {

std::string serialize(const ProfileArtifact &Artifact) {
  std::stringstream Stream;
  EXPECT_TRUE(Artifact.writeTo(Stream));
  return Stream.str();
}

JobSpec symmetrizationJob() {
  JobSpec Job;
  Job.WorkloadName = "Symmetrization";
  return Job;
}

/// A hand-built artifact with one loop, for merge/diff unit tests.
ProfileArtifact makeArtifact(const std::string &Loop, double Cf,
                             bool Conflict, uint64_t Samples = 1000) {
  ProfileArtifact A;
  A.Provenance.Job = symmetrizationJob();
  A.Result.TraceRefs = 100000;
  A.Result.L1Misses = 20000;
  A.Result.Samples = Samples;
  A.Result.L1MissRatio = 0.2;
  A.Result.NumSets = 64;
  A.Result.RcdThreshold = 8;
  LoopConflictReport Report;
  Report.Location = Loop;
  Report.Samples = Samples;
  Report.MissContribution = 1.0;
  Report.ContributionFactor = Cf;
  Report.ConflictPredicted = Conflict;
  Report.Significant = true;
  Report.PerSetMisses.assign(64, 1);
  A.Result.Loops.push_back(std::move(Report));
  return A;
}

} // namespace

//===----------------------------------------------------------------------===//
// Artifact serialization
//===----------------------------------------------------------------------===//

TEST(ProfileArtifactTest, RoundTripIsExact) {
  JobOutcome Outcome = runJob(symmetrizationJob());
  ASSERT_TRUE(Outcome.ok()) << Outcome.Error;
  const ProfileArtifact &A = Outcome.Artifact;
  ASSERT_FALSE(A.Result.Loops.empty());

  std::stringstream Stream(serialize(A));
  ProfileArtifact Loaded;
  std::string Error;
  ASSERT_TRUE(ProfileArtifact::readFrom(Stream, Loaded, &Error)) << Error;

  // Byte-exact round trip: the loaded artifact re-serializes to the
  // identical capsule.
  EXPECT_EQ(serialize(A), serialize(Loaded));

  // Spot-check that the interesting payload actually traveled.
  EXPECT_EQ(Loaded.Provenance.Job.WorkloadName, "Symmetrization");
  ASSERT_EQ(Loaded.Result.Loops.size(), A.Result.Loops.size());
  const LoopConflictReport &Want = A.Result.Loops.front();
  const LoopConflictReport &Got = Loaded.Result.Loops.front();
  EXPECT_EQ(Got.Location, Want.Location);
  EXPECT_EQ(Got.Samples, Want.Samples);
  EXPECT_EQ(Got.ConflictPredicted, Want.ConflictPredicted);
  EXPECT_EQ(Got.Rcd.buckets(), Want.Rcd.buckets());
  EXPECT_EQ(Got.PerSetMisses, Want.PerSetMisses);
  EXPECT_EQ(Got.DataStructures.size(), Want.DataStructures.size());
}

TEST(ProfileArtifactTest, RejectsGarbage) {
  std::stringstream Stream("definitely not an artifact");
  ProfileArtifact Loaded;
  std::string Error;
  EXPECT_FALSE(ProfileArtifact::readFrom(Stream, Loaded, &Error));
  EXPECT_NE(Error.find("magic"), std::string::npos) << Error;
}

TEST(ProfileArtifactTest, RejectsWrongVersion) {
  std::string Bytes = serialize(makeArtifact("symm.cpp:12", 0.7, true));
  Bytes[4] = 42; // Version field lives at bytes 4..7.
  std::stringstream Stream(Bytes);
  ProfileArtifact Loaded;
  std::string Error;
  EXPECT_FALSE(ProfileArtifact::readFrom(Stream, Loaded, &Error));
  EXPECT_NE(Error.find("version 42"), std::string::npos) << Error;
}

TEST(ProfileArtifactTest, RejectsTruncation) {
  std::string Bytes = serialize(makeArtifact("symm.cpp:12", 0.7, true));
  for (size_t Keep : {size_t{6}, Bytes.size() / 2, Bytes.size() - 1}) {
    std::stringstream Stream(Bytes.substr(0, Keep));
    ProfileArtifact Loaded;
    std::string Error;
    EXPECT_FALSE(ProfileArtifact::readFrom(Stream, Loaded, &Error))
        << "accepted a " << Keep << "-byte prefix";
    EXPECT_FALSE(Error.empty());
  }
}

TEST(ArtifactStoreTest, SaveThenListThenLoad) {
  const std::string Dir =
      (std::filesystem::path(::testing::TempDir()) / "ccprof-store-test")
          .string();
  std::filesystem::remove_all(Dir);
  ArtifactStore Store(Dir);
  std::string Error;
  ASSERT_TRUE(Store.ensureExists(&Error)) << Error;

  ProfileArtifact A = makeArtifact("symm.cpp:12", 0.7, true);
  std::string Path = Store.save(A, &Error);
  ASSERT_FALSE(Path.empty()) << Error;

  std::vector<std::string> Listed = Store.list();
  ASSERT_EQ(Listed.size(), 1u);
  EXPECT_EQ(Listed[0], Path);

  ProfileArtifact Loaded;
  ASSERT_TRUE(ProfileArtifact::loadFromFile(Path, Loaded, &Error)) << Error;
  EXPECT_EQ(serialize(A), serialize(Loaded));
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Merge
//===----------------------------------------------------------------------===//

TEST(MergeTest, MergeOfOneIsIdentity) {
  JobOutcome Outcome = runJob(symmetrizationJob());
  ASSERT_TRUE(Outcome.ok());
  MergeResult Merged = mergeArtifacts({&Outcome.Artifact, 1});
  ASSERT_TRUE(Merged.ok()) << Merged.Error;
  EXPECT_EQ(serialize(Outcome.Artifact), serialize(Merged.Merged));
}

TEST(MergeTest, MergeOfIdenticalRunsScalesEvidenceNotVerdicts) {
  JobOutcome Outcome = runJob(symmetrizationJob());
  ASSERT_TRUE(Outcome.ok());
  const ProfileArtifact &A = Outcome.Artifact;
  std::vector<ProfileArtifact> Three = {A, A, A};

  MergeResult Merged = mergeArtifacts(Three);
  ASSERT_TRUE(Merged.ok()) << Merged.Error;
  const ProfileResult &M = Merged.Merged.Result;

  EXPECT_EQ(Merged.Merged.Provenance.MergedRuns, 3u);
  EXPECT_EQ(M.TraceRefs, 3 * A.Result.TraceRefs);
  EXPECT_EQ(M.L1Misses, 3 * A.Result.L1Misses);
  EXPECT_EQ(M.Samples, 3 * A.Result.Samples);
  EXPECT_DOUBLE_EQ(M.L1MissRatio, A.Result.L1MissRatio);

  ASSERT_EQ(M.Loops.size(), A.Result.Loops.size());
  for (size_t I = 0; I < M.Loops.size(); ++I) {
    const LoopConflictReport &Want = A.Result.Loops[I];
    const LoopConflictReport &Got = M.Loops[I];
    EXPECT_EQ(Got.Location, Want.Location);
    EXPECT_EQ(Got.Samples, 3 * Want.Samples);
    // Sample-count-weighted derived statistics are unchanged when every
    // input is the same draw.
    EXPECT_DOUBLE_EQ(Got.ContributionFactor, Want.ContributionFactor);
    EXPECT_DOUBLE_EQ(Got.MissContribution, Want.MissContribution);
    EXPECT_EQ(Got.MedianRcd, Want.MedianRcd);
    EXPECT_EQ(Got.ConflictPredicted, Want.ConflictPredicted);
    EXPECT_EQ(Got.SetsUtilized, Want.SetsUtilized);
    EXPECT_EQ(Got.Rcd.total(), 3 * Want.Rcd.total());
  }
}

TEST(MergeTest, MergeIsDeterministic) {
  JobSpec Job = symmetrizationJob();
  JobOutcome First = runJob(Job);
  Job.Repeat = 1;
  JobOutcome Second = runJob(Job);
  ASSERT_TRUE(First.ok() && Second.ok());

  std::vector<ProfileArtifact> Inputs = {First.Artifact, Second.Artifact};
  MergeResult MergedA = mergeArtifacts(Inputs);
  MergeResult MergedB = mergeArtifacts(Inputs);
  ASSERT_TRUE(MergedA.ok() && MergedB.ok());
  EXPECT_EQ(serialize(MergedA.Merged), serialize(MergedB.Merged));
}

TEST(MergeTest, RejectsIncompatibleConfigurations) {
  ProfileArtifact A = makeArtifact("symm.cpp:12", 0.7, true);
  ProfileArtifact B = A;
  B.Provenance.Job.WorkloadName = "NW";
  std::vector<ProfileArtifact> Inputs = {A, B};
  MergeResult Merged = mergeArtifacts(Inputs);
  EXPECT_FALSE(Merged.ok());
  EXPECT_NE(Merged.Error.find("different configurations"),
            std::string::npos)
      << Merged.Error;
}

TEST(MergeTest, RepeatsDifferOnlyInSeedAreCompatible) {
  ProfileArtifact A = makeArtifact("symm.cpp:12", 0.7, true);
  ProfileArtifact B = A;
  B.Provenance.Job.Repeat = 5;
  EXPECT_TRUE(mergeCompatible(A, B));
}

//===----------------------------------------------------------------------===//
// Diff
//===----------------------------------------------------------------------===//

TEST(DiffTest, SelfDiffIsUnchanged) {
  ProfileArtifact A = makeArtifact("symm.cpp:12", 0.7, true);
  DiffResult Diff = diffArtifacts(A, A);
  EXPECT_EQ(Diff.Changed, 0u);
  EXPECT_EQ(Diff.Regressions, 0u);
  ASSERT_EQ(Diff.Loops.size(), 1u);
  EXPECT_EQ(Diff.Loops[0].Change, LoopChange::Unchanged);
}

TEST(DiffTest, FlagsRegressionsAndIsSymmetric) {
  ProfileArtifact Clean = makeArtifact("symm.cpp:12", 0.1, false);
  ProfileArtifact Bad = makeArtifact("symm.cpp:12", 0.9, true);

  DiffResult Forward = diffArtifacts(Clean, Bad);
  EXPECT_EQ(Forward.Regressions, 1u);
  EXPECT_EQ(Forward.Changed, 1u);
  ASSERT_EQ(Forward.Loops.size(), 1u);
  EXPECT_EQ(Forward.Loops[0].Change, LoopChange::BecameConflict);

  // Swapping the inputs mirrors the direction and keeps Changed.
  DiffResult Backward = diffArtifacts(Bad, Clean);
  EXPECT_EQ(Backward.Regressions, 0u);
  EXPECT_EQ(Backward.Changed, 1u);
  ASSERT_EQ(Backward.Loops.size(), 1u);
  EXPECT_EQ(Backward.Loops[0].Change, LoopChange::BecameClean);
}

TEST(DiffTest, ToleranceGatesCfDrift) {
  ProfileArtifact A = makeArtifact("symm.cpp:12", 0.40, true);
  ProfileArtifact B = makeArtifact("symm.cpp:12", 0.44, true);

  DiffOptions Loose;
  Loose.CfTolerance = 0.05;
  EXPECT_EQ(diffArtifacts(A, B, Loose).Changed, 0u);

  DiffOptions Tight;
  Tight.CfTolerance = 0.01;
  DiffResult Diff = diffArtifacts(A, B, Tight);
  ASSERT_EQ(Diff.Loops.size(), 1u);
  EXPECT_EQ(Diff.Loops[0].Change, LoopChange::CfDrift);
  EXPECT_EQ(Diff.Regressions, 0u);
}

TEST(DiffTest, ReportsAddedAndRemovedLoops) {
  ProfileArtifact A = makeArtifact("symm.cpp:12", 0.7, true);
  ProfileArtifact B = makeArtifact("other.cpp:9", 0.2, false);
  DiffResult Diff = diffArtifacts(A, B);
  ASSERT_EQ(Diff.Loops.size(), 2u);
  EXPECT_EQ(Diff.Changed, 2u);
  size_t OnlyA = 0, OnlyB = 0;
  for (const LoopDiff &Row : Diff.Loops) {
    OnlyA += Row.Change == LoopChange::OnlyInA;
    OnlyB += Row.Change == LoopChange::OnlyInB;
  }
  EXPECT_EQ(OnlyA, 1u);
  EXPECT_EQ(OnlyB, 1u);
}

//===----------------------------------------------------------------------===//
// Job matrix and runner
//===----------------------------------------------------------------------===//

TEST(JobSpecTest, MatrixExpansionIsCompleteAndKeysAreUnique) {
  BatchMatrix Matrix;
  Matrix.Workloads = {"Symmetrization", "ADI"};
  Matrix.Periods = {171, 1212};
  Matrix.Levels = {ProfileLevel::L1, ProfileLevel::L2};
  Matrix.Repeats = 2;

  std::vector<JobSpec> Jobs = expandMatrix(Matrix);
  EXPECT_EQ(Jobs.size(), 2u * 2u * 2u * 2u);
  std::set<std::string> Keys;
  for (const JobSpec &Job : Jobs)
    Keys.insert(Job.key());
  EXPECT_EQ(Keys.size(), Jobs.size()) << "job keys must be unique";
}

TEST(JobSpecTest, ExactMatrixIgnoresPeriodSweep) {
  BatchMatrix Matrix;
  Matrix.Workloads = {"Symmetrization"};
  Matrix.Periods = {171, 1212, 9999};
  Matrix.Exact = true;
  EXPECT_EQ(expandMatrix(Matrix).size(), 1u);
}

TEST(JobSpecTest, LossilySanitizedNamesNeverCollide) {
  // "MKL-FFT" and "MKL_FFT" both sanitize to "MKL_FFT"; without the
  // raw-name hash their artifacts would overwrite each other.
  JobSpec Dashed;
  Dashed.WorkloadName = "MKL-FFT";
  JobSpec Underscored = Dashed;
  Underscored.WorkloadName = "MKL_FFT";
  JobSpec Dotted = Dashed;
  Dotted.WorkloadName = "MKL.FFT";
  EXPECT_NE(Dashed.key(), Underscored.key());
  EXPECT_NE(Dashed.key(), Dotted.key());
  EXPECT_NE(Underscored.key(), Dotted.key());

  // Same raw name still means the same key.
  JobSpec DashedAgain = Dashed;
  EXPECT_EQ(Dashed.key(), DashedAgain.key());
}

TEST(JobSpecTest, CleanNamesKeepStableHashFreeKeys) {
  // Names that sanitize to themselves are the common case; their keys
  // are a published stable format, no hash suffix.
  JobSpec Job;
  Job.WorkloadName = "NW";
  EXPECT_EQ(Job.key(), "NW-orig-l1-firsttouch-bursty-p1212-t8-r0");
}

TEST(JobRunnerTest, ReportsUnknownWorkload) {
  JobSpec Job;
  Job.WorkloadName = "NoSuchWorkload";
  JobOutcome Outcome = runJob(Job);
  EXPECT_FALSE(Outcome.ok());
  EXPECT_NE(Outcome.Error.find("NoSuchWorkload"), std::string::npos);
}

TEST(JobRunnerTest, ParallelOutputIsByteIdenticalToSequential) {
  BatchMatrix Matrix;
  Matrix.Workloads = {"Symmetrization", "NW"};
  Matrix.Repeats = 2;
  std::vector<JobSpec> Jobs = expandMatrix(Matrix);
  ASSERT_EQ(Jobs.size(), 4u);

  std::vector<JobOutcome> Sequential = runJobs(Jobs, 1);
  std::vector<JobOutcome> Parallel = runJobs(Jobs, 4);
  ASSERT_EQ(Sequential.size(), Parallel.size());
  for (size_t I = 0; I < Sequential.size(); ++I) {
    ASSERT_TRUE(Sequential[I].ok()) << Sequential[I].Error;
    ASSERT_TRUE(Parallel[I].ok()) << Parallel[I].Error;
    EXPECT_EQ(Sequential[I].Job.key(), Parallel[I].Job.key());
    EXPECT_EQ(serialize(Sequential[I].Artifact),
              serialize(Parallel[I].Artifact))
        << "job " << Jobs[I].key()
        << " produced different bytes under parallel execution";
  }
}

TEST(JobRunnerTest, ProgressCallbackSeesEveryJob) {
  BatchMatrix Matrix;
  Matrix.Workloads = {"Symmetrization"};
  Matrix.Repeats = 3;
  std::vector<JobSpec> Jobs = expandMatrix(Matrix);
  size_t Calls = 0, MaxDone = 0;
  runJobs(Jobs, 2, 0, [&](const JobOutcome &, size_t Done) {
    ++Calls;
    MaxDone = std::max(MaxDone, Done);
  });
  EXPECT_EQ(Calls, Jobs.size());
  EXPECT_EQ(MaxDone, Jobs.size());
}

//===----------------------------------------------------------------------===//
// Shared-trace engine and miss-stream cache
//===----------------------------------------------------------------------===//

TEST(SharedTraceTest, OutputIsByteIdenticalToNaivePath) {
  // A sampling-period sweep across both cache levels: the configuration
  // the shared-trace engine is built for. Every artifact must serialize
  // to exactly the bytes the naive one-simulation-per-job path emits —
  // this is the pipeline's reproducibility contract (PR 1) carried over
  // to the fast path.
  BatchMatrix Matrix;
  Matrix.Workloads = {"Symmetrization"};
  Matrix.Periods = {171, 603, 1212};
  Matrix.Levels = {ProfileLevel::L1, ProfileLevel::L2};
  Matrix.Repeats = 2;
  std::vector<JobSpec> Jobs = expandMatrix(Matrix);
  ASSERT_EQ(Jobs.size(), 12u);

  std::vector<JobOutcome> Naive = runJobs(Jobs, 1);
  SharedBatchStats Stats;
  std::vector<JobOutcome> Shared =
      runJobsShared(Jobs, 4, 0, nullptr, nullptr, &Stats);

  ASSERT_EQ(Naive.size(), Shared.size());
  for (size_t I = 0; I < Naive.size(); ++I) {
    ASSERT_TRUE(Naive[I].ok()) << Naive[I].Error;
    ASSERT_TRUE(Shared[I].ok()) << Shared[I].Error;
    EXPECT_EQ(serialize(Naive[I].Artifact), serialize(Shared[I].Artifact))
        << "job " << Jobs[I].key()
        << " produced different bytes via the shared-trace engine";
  }

  // One workload, one variant -> one trace; two distinct streams (L1
  // and L2); the other ten jobs ride the cache.
  EXPECT_EQ(Stats.TraceGroups, 1u);
  EXPECT_EQ(Stats.Streams.Misses, 2u);
  EXPECT_EQ(Stats.Streams.Hits, 10u);
  EXPECT_EQ(Stats.Streams.Evictions, 0u);
}

TEST(SharedTraceTest, ExactJobsShareStreamsWithSampledJobs) {
  // An exact job consumes the same miss stream as a sampled job of the
  // same configuration, just unsampled — so its stream is a cache hit.
  JobSpec Sampled = symmetrizationJob();
  JobSpec Exact = symmetrizationJob();
  Exact.Exact = true;
  EXPECT_EQ(missStreamKeyOf(Sampled), missStreamKeyOf(Exact));

  std::vector<JobSpec> Jobs = {Sampled, Exact};
  SharedBatchStats Stats;
  std::vector<JobOutcome> Shared =
      runJobsShared(Jobs, 1, 0, nullptr, nullptr, &Stats);
  EXPECT_EQ(Stats.Streams.Misses, 1u);
  EXPECT_EQ(Stats.Streams.Hits, 1u);

  std::vector<JobOutcome> Naive = runJobs(Jobs, 1);
  for (size_t I = 0; I < Jobs.size(); ++I)
    EXPECT_EQ(serialize(Naive[I].Artifact), serialize(Shared[I].Artifact));
}

TEST(SharedTraceTest, StreamKeysSeparateWhatMustNotBeShared) {
  JobSpec Base = symmetrizationJob();

  JobSpec OtherPeriod = Base;
  OtherPeriod.MeanPeriod = 171;
  JobSpec OtherThreshold = Base;
  OtherThreshold.RcdThreshold = 16;
  JobSpec OtherRepeat = Base;
  OtherRepeat.Repeat = 3;
  // Sampling-side knobs never split the stream...
  EXPECT_EQ(missStreamKeyOf(Base), missStreamKeyOf(OtherPeriod));
  EXPECT_EQ(missStreamKeyOf(Base), missStreamKeyOf(OtherThreshold));
  EXPECT_EQ(missStreamKeyOf(Base), missStreamKeyOf(OtherRepeat));

  // ...cache-side knobs always do.
  JobSpec OtherLevel = Base;
  OtherLevel.Level = ProfileLevel::L2;
  JobSpec OtherWorkload = Base;
  OtherWorkload.WorkloadName = "NW";
  JobSpec OtherVariant = Base;
  OtherVariant.Variant = WorkloadVariant::Optimized;
  EXPECT_NE(missStreamKeyOf(Base), missStreamKeyOf(OtherLevel));
  EXPECT_NE(missStreamKeyOf(Base), missStreamKeyOf(OtherWorkload));
  EXPECT_NE(missStreamKeyOf(Base), missStreamKeyOf(OtherVariant));

  // The page mapping reaches the simulation only at L2.
  JobSpec L1Shuffled = Base;
  L1Shuffled.Mapping = PagePolicy::Shuffled;
  EXPECT_EQ(missStreamKeyOf(Base), missStreamKeyOf(L1Shuffled));
  JobSpec L2First = OtherLevel;
  JobSpec L2Shuffled = OtherLevel;
  L2Shuffled.Mapping = PagePolicy::Shuffled;
  EXPECT_NE(missStreamKeyOf(L2First), missStreamKeyOf(L2Shuffled));
}

TEST(MissStreamCacheTest, CountsHitsPerEntryAndEvictsLeastRecent) {
  MissStreamCache Cache(2);
  uint64_t Computes = 0;
  auto Stream = [&](size_t Len) {
    return [&Computes, Len] {
      ++Computes;
      return std::vector<MissEvent>(Len);
    };
  };

  EXPECT_EQ(Cache.getOrCompute("a", Stream(3))->size(), 3u);
  EXPECT_EQ(Cache.getOrCompute("b", Stream(5))->size(), 5u);
  EXPECT_EQ(Cache.getOrCompute("a", Stream(3))->size(), 3u); // hit, a is MRU
  EXPECT_EQ(Computes, 2u);

  // Third key evicts "b" (least recent), not "a".
  EXPECT_EQ(Cache.getOrCompute("c", Stream(7))->size(), 7u);
  EXPECT_EQ(Cache.size(), 2u);
  Cache.getOrCompute("b", Stream(5));
  EXPECT_EQ(Computes, 4u) << "evicted entry must be recomputed";

  MissStreamCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Misses, 4u);
  EXPECT_EQ(Stats.Evictions, 2u); // b evicted by c, then a evicted by b
  ASSERT_EQ(Stats.Entries.size(), 3u);
  EXPECT_EQ(Stats.Entries[0].Key, "a");
  EXPECT_EQ(Stats.Entries[0].Hits, 1u);
  EXPECT_EQ(Stats.Entries[0].Events, 3u);
  EXPECT_FALSE(Stats.Entries[0].Resident);
  EXPECT_TRUE(Stats.Entries[1].Resident); // b, re-inserted
  EXPECT_TRUE(Stats.Entries[2].Resident); // c
}

TEST(MissStreamCacheTest, EvictedStreamsSurviveWhileHeld) {
  MissStreamCache Cache(1);
  MissStreamCache::StreamPtr Held =
      Cache.getOrCompute("a", [] { return std::vector<MissEvent>(9); });
  Cache.getOrCompute("b", [] { return std::vector<MissEvent>(1); });
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(Held->size(), 9u) << "held stream must outlive its eviction";
}

TEST(MissStreamCacheTest, RacingComputeCountsLoserAsHit) {
  // Two threads demand the same key and are forced into the compute
  // callback simultaneously, so both run it (the documented duplicate
  // compute). Exactly one stream may be stored and counted as a miss;
  // the loser's lookup is served from the cache and must be a hit —
  // the regression was counting both as misses, overstating simulated
  // streams under contention.
  MissStreamCache Cache(4);
  std::latch BothComputing(2);
  std::atomic<unsigned> Computes{0};
  auto Compute = [&] {
    BothComputing.arrive_and_wait();
    ++Computes;
    return std::vector<MissEvent>(6);
  };

  MissStreamCache::StreamPtr A, B;
  std::thread First([&] { A = Cache.getOrCompute("k", Compute); });
  std::thread Second([&] { B = Cache.getOrCompute("k", Compute); });
  First.join();
  Second.join();

  EXPECT_EQ(Computes.load(), 2u) << "latch must force the duplicate compute";
  EXPECT_EQ(A.get(), B.get()) << "racing callers must share one stored copy";
  ASSERT_TRUE(A);
  EXPECT_EQ(A->size(), 6u);

  MissStreamCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Misses, 1u) << "one stream stored, one miss";
  EXPECT_EQ(Stats.Hits, 1u) << "the losing lookup is a cache hit";
  ASSERT_EQ(Stats.Entries.size(), 1u);
  EXPECT_EQ(Stats.Entries[0].Hits, 1u);
  EXPECT_EQ(Stats.Entries[0].Events, 6u);
}

//===----------------------------------------------------------------------===//
// Canonicalization
//===----------------------------------------------------------------------===//

TEST(CanonicalizeTest, EqualLayoutsFromDifferentBasesCanonicalizeEqually) {
  // The same execution recorded twice with every buffer at a different
  // absolute address (different allocator state / thread stack) must
  // canonicalize to identical traces.
  auto Record = [](uint64_t HeapBase, uint64_t StackBase) {
    Trace T;
    SiteId Load = T.site("a.cpp", 10, "kernel");
    SiteId Spill = T.site("a.cpp", 11, "kernel");
    T.allocations().recordAllocation("A[]", HeapBase, 4096);
    for (uint64_t I = 0; I < 16; ++I) {
      T.recordLoad(Load, HeapBase + I * 64, 8);
      T.recordStore(Spill, StackBase - I * 8, 8); // stack grows down
    }
    return T;
  };

  Trace First = Record(0x7f1234567010, 0x7ffc0003abc8);
  Trace Second = Record(0x561200aaa440, 0x7f9988112374);

  std::stringstream A, B;
  ASSERT_TRUE(canonicalizeTrace(First).writeTo(A));
  ASSERT_TRUE(canonicalizeTrace(Second).writeTo(B));
  EXPECT_EQ(A.str(), B.str());
}

TEST(CanonicalizeTest, PreservesIntraAllocationLayoutAndMetadata) {
  Trace T;
  SiteId Load = T.site("a.cpp", 10, "kernel");
  const uint64_t Base = 0x7f0000000123;
  T.allocations().recordAllocation("A[]", Base, 8192);
  T.recordLoad(Load, Base + 100, 8);
  T.recordLoad(Load, Base + 4196, 8);

  Trace Canon = canonicalizeTrace(T);
  ASSERT_EQ(Canon.size(), 2u);
  // Offsets from the allocation base survive exactly.
  EXPECT_EQ(Canon.records()[1].Addr - Canon.records()[0].Addr, 4096u);
  // The canonical base is page-aligned.
  auto Id = Canon.allocations().findByAddress(Canon.records()[0].Addr);
  ASSERT_TRUE(Id.has_value());
  EXPECT_EQ(Canon.allocations().info(*Id).Start % 4096, 0u);
  EXPECT_EQ(Canon.allocations().info(*Id).Name, "A[]");
  EXPECT_EQ(Canon.sites().size(), T.sites().size());
}

TEST(CanonicalizeTest, IsIdempotent) {
  JobSpec Job = symmetrizationJob();
  std::unique_ptr<Workload> W = makeWorkloadByName(Job.WorkloadName);
  Trace Recorded;
  W->run(WorkloadVariant::Original, &Recorded);
  Trace Once = canonicalizeTrace(Recorded);
  Trace Twice = canonicalizeTrace(Once);
  std::stringstream A, B;
  ASSERT_TRUE(Once.writeTo(A));
  ASSERT_TRUE(Twice.writeTo(B));
  EXPECT_EQ(A.str(), B.str());
}

//===----------------------------------------------------------------------===//
// Static screening
//===----------------------------------------------------------------------===//

TEST(StaticScreenTest, SkipsProvenCleanJobsAndKeepsRestByteIdentical) {
  // Original variants conflict by construction, optimized Symmetrization
  // and NW are statically proven clean under the canonical layout: the
  // screened run must skip exactly those and leave every executed job's
  // artifact byte-identical to the unscreened run.
  BatchMatrix Matrix;
  Matrix.Workloads = {"Symmetrization", "NW"};
  Matrix.Variants = {WorkloadVariant::Original, WorkloadVariant::Optimized};
  std::vector<JobSpec> Jobs = expandMatrix(Matrix);
  ASSERT_EQ(Jobs.size(), 4u);

  BatchExecOptions Plain;
  Plain.Workers = 2;
  std::vector<JobOutcome> Unscreened = runJobsShared(Jobs, Plain);

  BatchExecOptions Screen = Plain;
  Screen.StaticScreen = true;
  SharedBatchStats Stats;
  std::vector<JobOutcome> Screened =
      runJobsShared(Jobs, Screen, 0, nullptr, nullptr, &Stats);

  ASSERT_EQ(Screened.size(), Unscreened.size());
  uint64_t Skipped = 0;
  for (size_t I = 0; I < Screened.size(); ++I) {
    ASSERT_TRUE(Screened[I].ok()) << Screened[I].Error;
    ASSERT_TRUE(Unscreened[I].ok()) << Unscreened[I].Error;
    if (Screened[I].Skipped) {
      ++Skipped;
      EXPECT_EQ(Jobs[I].Variant, WorkloadVariant::Optimized)
          << Jobs[I].key() << " skipped but not an optimized variant";
      continue;
    }
    EXPECT_EQ(serialize(Screened[I].Artifact),
              serialize(Unscreened[I].Artifact))
        << Jobs[I].key() << " changed bytes under --static-screen";
  }
  EXPECT_EQ(Skipped, 2u);
  EXPECT_EQ(Stats.StaticSkipped, 2u);
}

TEST(StaticScreenTest, SweepScreenSkipsWholeGroupsAcrossConfigSweep) {
  // A multi-period, multi-repeat sweep over statically clean groups
  // must skip every L1 job of the sweep — the whole group, so no trace
  // is ever generated — while L2 jobs of the same groups still run and
  // stay byte-identical to the unscreened run.
  BatchMatrix Matrix;
  Matrix.Workloads = {"Symmetrization", "NW"};
  Matrix.Variants = {WorkloadVariant::Optimized};
  Matrix.Periods = {606, 1212};
  Matrix.Levels = {ProfileLevel::L1, ProfileLevel::L2};
  Matrix.Repeats = 2;
  std::vector<JobSpec> Jobs = expandMatrix(Matrix);

  BatchExecOptions Plain;
  Plain.Workers = 2;
  std::vector<JobOutcome> Unscreened = runJobsShared(Jobs, Plain);

  BatchExecOptions Screen = Plain;
  Screen.StaticScreen = true;
  SharedBatchStats Stats;
  std::vector<JobOutcome> Screened =
      runJobsShared(Jobs, Screen, 0, nullptr, nullptr, &Stats);

  for (size_t I = 0; I < Screened.size(); ++I) {
    ASSERT_TRUE(Screened[I].ok()) << Screened[I].Error;
    if (Jobs[I].Level == ProfileLevel::L1) {
      EXPECT_TRUE(Screened[I].Skipped)
          << Jobs[I].key() << " survived a clean sweep screen";
    } else {
      EXPECT_FALSE(Screened[I].Skipped) << Jobs[I].key();
      EXPECT_EQ(serialize(Screened[I].Artifact),
                serialize(Unscreened[I].Artifact))
          << Jobs[I].key() << " changed bytes under --static-screen";
    }
  }
  // Every period/repeat variant of both groups' L1 jobs skipped.
  EXPECT_EQ(Stats.StaticSkipped, 2u * 2u * 2u);
  EXPECT_EQ(Stats.StaticScreenedGroups, 0u) << "L2 jobs still ran";

  // The same sweep without L2 jobs skips the groups outright.
  Matrix.Levels = {ProfileLevel::L1};
  std::vector<JobSpec> L1Jobs = expandMatrix(Matrix);
  SharedBatchStats L1Stats;
  std::vector<JobOutcome> L1Screened =
      runJobsShared(L1Jobs, Screen, 0, nullptr, nullptr, &L1Stats);
  for (const JobOutcome &Outcome : L1Screened)
    EXPECT_TRUE(Outcome.Skipped) << Outcome.Job.key();
  EXPECT_EQ(L1Stats.StaticScreenedGroups, 2u);
}

TEST(StaticScreenTest, ScreenedVerdictsMatchUnscreenedOnCaseStudies) {
  // Outcome equality on the full case-study suite, both variants: a
  // job the screen skips must be one whose unscreened artifact finds
  // no conflicts (skip-soundness), and a job the screen runs must be
  // byte-identical to its unscreened twin.
  BatchMatrix Matrix;
  Matrix.Workloads = defaultBatchWorkloads();
  Matrix.Variants = {WorkloadVariant::Original, WorkloadVariant::Optimized};
  std::vector<JobSpec> Jobs = expandMatrix(Matrix);

  BatchExecOptions Plain;
  Plain.Workers = 4;
  std::vector<JobOutcome> Unscreened = runJobsShared(Jobs, Plain);

  BatchExecOptions Screen = Plain;
  Screen.StaticScreen = true;
  SharedBatchStats Stats;
  std::vector<JobOutcome> Screened =
      runJobsShared(Jobs, Screen, 0, nullptr, nullptr, &Stats);

  for (size_t I = 0; I < Screened.size(); ++I) {
    ASSERT_TRUE(Screened[I].ok()) << Screened[I].Error;
    ASSERT_TRUE(Unscreened[I].ok()) << Unscreened[I].Error;
    if (Screened[I].Skipped) {
      for (const LoopConflictReport &Loop :
           Unscreened[I].Artifact.Result.Loops)
        EXPECT_FALSE(Loop.ConflictPredicted)
            << Jobs[I].key() << " was skipped but the unscreened run "
            << "finds a conflict in " << Loop.Location;
    } else {
      EXPECT_EQ(serialize(Screened[I].Artifact),
                serialize(Unscreened[I].Artifact))
          << Jobs[I].key() << " changed bytes under --static-screen";
    }
  }
  // The screen must actually fire on this suite (optimized variants
  // are clean by construction), or the soundness check is vacuous.
  EXPECT_GT(Stats.StaticSkipped, 0u);
}

TEST(StaticScreenTest, NeverSkipsOriginalVariants) {
  // Every case-study original must survive screening — a screen that
  // skips a known-conflicting configuration would be unsound.
  BatchMatrix Matrix;
  Matrix.Workloads = defaultBatchWorkloads();
  std::vector<JobSpec> Jobs = expandMatrix(Matrix);
  BatchExecOptions Screen;
  Screen.Workers = 4;
  Screen.StaticScreen = true;
  SharedBatchStats Stats;
  std::vector<JobOutcome> Outcomes =
      runJobsShared(Jobs, Screen, 0, nullptr, nullptr, &Stats);
  for (const JobOutcome &Outcome : Outcomes) {
    EXPECT_TRUE(Outcome.ok()) << Outcome.Error;
    EXPECT_FALSE(Outcome.Skipped) << Outcome.Job.key();
  }
  EXPECT_EQ(Stats.StaticSkipped, 0u);
}
