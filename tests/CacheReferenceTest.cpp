//===- tests/CacheReferenceTest.cpp - Oracle cross-checks ------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Cross-checks the production Cache against a deliberately naive oracle
// (O(ways) list-shuffling simulator) over randomized reference streams
// and a sweep of geometries. Any divergence in hit/miss behaviour or
// eviction choice is a bug in one of the two — and the oracle is simple
// enough to trust.
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"
#include "support/Rng.h"

#include "gtest/gtest.h"

#include <deque>
#include <vector>

using namespace ccprof;

namespace {

/// Textbook set-associative cache: per-set recency list, front = MRU.
class OracleCache {
public:
  OracleCache(CacheGeometry Geometry, ReplacementKind Policy)
      : Geometry(Geometry), Policy(Policy), Sets(Geometry.numSets()) {}

  /// \returns (hit, evicted line or ~0).
  std::pair<bool, uint64_t> access(uint64_t Addr) {
    auto &Set = Sets[Geometry.setIndexOf(Addr)];
    uint64_t Line = Geometry.lineAddrOf(Addr);
    for (size_t I = 0; I < Set.size(); ++I) {
      if (Set[I] != Line)
        continue;
      if (Policy == ReplacementKind::Lru) {
        Set.erase(Set.begin() + static_cast<long>(I));
        Set.push_front(Line);
      }
      return {true, ~uint64_t{0}};
    }
    uint64_t Evicted = ~uint64_t{0};
    if (Set.size() == Geometry.associativity()) {
      Evicted = Set.back(); // LRU and FIFO both evict the back.
      Set.pop_back();
    }
    Set.push_front(Line);
    return {false, Evicted};
  }

private:
  CacheGeometry Geometry;
  ReplacementKind Policy;
  /// Front = most recent (LRU) / newest insertion (FIFO).
  std::vector<std::deque<uint64_t>> Sets;
};

} // namespace

class CacheOracleTest
    : public ::testing::TestWithParam<
          std::tuple<uint64_t, uint32_t, uint32_t, int>> {};

TEST_P(CacheOracleTest, LruMatchesOracle) {
  auto [Size, Line, Assoc, Locality] = GetParam();
  CacheGeometry G(Size, Line, Assoc);
  Cache Real(G, ReplacementKind::Lru);
  OracleCache Oracle(G, ReplacementKind::Lru);

  Xoshiro256 Rng(Size ^ Assoc ^ static_cast<uint64_t>(Locality));
  uint64_t Mismatches = 0;
  for (int I = 0; I < 30000; ++I) {
    // Locality controls the footprint: smaller pools re-reference more.
    uint64_t Addr = Rng.nextBounded(uint64_t{1} << Locality) * 16;
    CacheAccessResult R = Real.access(Addr);
    auto [OracleHit, OracleEvicted] = Oracle.access(Addr);
    if (R.Hit != OracleHit)
      ++Mismatches;
    if (R.EvictedLine &&
        (OracleEvicted == ~uint64_t{0} || *R.EvictedLine != OracleEvicted))
      ++Mismatches;
    if (!R.EvictedLine && OracleEvicted != ~uint64_t{0})
      ++Mismatches;
  }
  EXPECT_EQ(Mismatches, 0u);
}

TEST_P(CacheOracleTest, FifoMatchesOracle) {
  auto [Size, Line, Assoc, Locality] = GetParam();
  CacheGeometry G(Size, Line, Assoc);
  Cache Real(G, ReplacementKind::Fifo);
  OracleCache Oracle(G, ReplacementKind::Fifo);

  Xoshiro256 Rng(Size + Assoc + static_cast<uint64_t>(Locality));
  for (int I = 0; I < 30000; ++I) {
    uint64_t Addr = Rng.nextBounded(uint64_t{1} << Locality) * 16;
    CacheAccessResult R = Real.access(Addr);
    auto [OracleHit, OracleEvicted] = Oracle.access(Addr);
    ASSERT_EQ(R.Hit, OracleHit) << "at access " << I;
    if (R.EvictedLine) {
      ASSERT_EQ(*R.EvictedLine, OracleEvicted) << "at access " << I;
    } else {
      ASSERT_EQ(OracleEvicted, ~uint64_t{0}) << "at access " << I;
    }
  }
}

TEST_P(CacheOracleTest, FullyAssociativeLruMatchesOracle) {
  auto [Size, Line, Assoc, Locality] = GetParam();
  (void)Assoc;
  CacheGeometry G(Size, Line,
                  static_cast<uint32_t>(Size / Line)); // 1 set
  if (G.numLines() > 4096)
    GTEST_SKIP() << "oracle too slow for huge fully-associative shapes";
  FullyAssociativeLru Real(G.numLines());
  OracleCache Oracle(G, ReplacementKind::Lru);

  Xoshiro256 Rng(Size * 3 + static_cast<uint64_t>(Locality));
  for (int I = 0; I < 30000; ++I) {
    uint64_t Addr = Rng.nextBounded(uint64_t{1} << Locality) * 16;
    bool Hit = Real.access(G.lineAddrOf(Addr));
    auto [OracleHit, OracleEvicted] = Oracle.access(Addr);
    (void)OracleEvicted;
    ASSERT_EQ(Hit, OracleHit) << "at access " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GeometryAndLocality, CacheOracleTest,
    ::testing::Values(
        std::make_tuple(uint64_t{4096}, 64u, 1u, 14),   // direct-mapped
        std::make_tuple(uint64_t{4096}, 64u, 2u, 14),
        std::make_tuple(uint64_t{32768}, 64u, 8u, 16),  // the paper's L1
        std::make_tuple(uint64_t{32768}, 64u, 8u, 20),  // low locality
        std::make_tuple(uint64_t{8192}, 32u, 4u, 15),
        std::make_tuple(uint64_t{2048}, 64u, 16u, 13),  // 2 fat sets
        std::make_tuple(uint64_t{65536}, 128u, 4u, 18)));
