//===- tests/ConsistencyCheckerTest.cpp - Static vs measured join --------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The consistency checker's job is to catch lying models: a measured
// conflict in a loop the model covers with exact placement yet
// predicts clean must surface as Contradicted. These tests build a
// tiny synthetic kernel (one loop, one array), record its ground-truth
// trace, and check the join against a truthful and a mis-stated model.
//
//===----------------------------------------------------------------------===//

#include "analysis/ConsistencyChecker.h"
#include "analysis/StaticConflictAnalyzer.h"
#include "cfg/SyntheticCodeGen.h"
#include "core/Profiler.h"
#include "trace/Canonicalize.h"

#include "gtest/gtest.h"

#include <iterator>
#include <set>

namespace {

using namespace ccprof;

constexpr uint64_t RowStride = 4096; // One full set stride: a worst walk.
constexpr uint64_t Rows = 500;
constexpr uint64_t Sweeps = 32;

/// One function, one loop (header line 10, body line 11): the shape
/// both the recorded sites and the model descriptors attach to. The
/// image must outlive any ProgramStructure built over it.
BinaryImage kernelImage() {
  FunctionSpec F;
  F.Name = "kernel";
  F.StartLine = 9;
  F.EndLine = 13;
  F.Loops = {LoopSpec{10, 12, {11}, {}, {}}};
  return lowerToBinary("sim.cpp", {F});
}

/// Ground truth: `Sweeps` column walks striding a whole set-stride, so
/// every access of the recorded trace lands on one cache set.
Trace recordColumnWalk() {
  Trace T;
  const uint64_t Base = uint64_t{1} << 30;
  T.registerAllocation("col[]", reinterpret_cast<const char *>(Base),
                       Rows * RowStride);
  SiteId Site = T.site("sim.cpp", 11, "kernel");
  for (uint64_t S = 0; S < Sweeps; ++S)
    for (uint64_t R = 0; R < Rows; ++R)
      T.recordLoad(Site, Base + R * RowStride, 8);
  return T;
}

/// The model of the kernel; \p StrideBytes is what it *claims* the row
/// stride is — pass RowStride for the truth, 64 for the lie.
StaticAccessModel kernelModel(int64_t StrideBytes) {
  StaticAccessModel Model;
  Model.SourceFile = "sim.cpp";
  Model.Complete = true;
  Model.Allocations = {{"col[]", Rows * RowStride, true}};
  AccessDescriptor D;
  D.Array = "col[]";
  D.Line = 11;
  D.ElementBytes = 8;
  D.Levels = {{Sweeps, 0}, {Rows, StrideBytes}};
  Model.Accesses = {D};
  return Model;
}

ConsistencyReport checkAgainstTruth(const StaticAccessModel &Model) {
  BinaryImage Image = kernelImage();
  ProgramStructure Structure(Image);
  ProfileResult Measured =
      Profiler().profileExact(canonicalizeTrace(recordColumnWalk()), Structure);
  StaticAnalysisResult Static =
      StaticConflictAnalyzer().analyze(Model, &Structure);
  return ConsistencyChecker().check(Static, Measured);
}

/// A truthful model of a conflicting kernel: both sides flag the loop
/// and the join confirms it.
TEST(ConsistencyCheckerTest, TruthfulModelIsConfirmed) {
  ConsistencyReport Report = checkAgainstTruth(kernelModel(RowStride));
  EXPECT_TRUE(Report.consistent());
  EXPECT_EQ(Report.Contradicted, 0u);
  const LoopConsistency *Loop = Report.byLocation("sim.cpp:10");
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Loop->Verdict, ConsistencyVerdict::ConfirmedConflict);
  EXPECT_TRUE(Loop->HasStatic);
  EXPECT_TRUE(Loop->HasMeasured);
  EXPECT_GT(Loop->VictimSetAgreement, 0.99);
}

/// Acceptance criterion: a deliberately mis-modeled stride — the model
/// claims the column walk is a contiguous 64-byte walk, which is
/// provably clean — must be reported Contradicted, because the
/// measurement shows the conflict under exact placement.
TEST(ConsistencyCheckerTest, MisModeledStrideIsContradicted) {
  ConsistencyReport Report = checkAgainstTruth(kernelModel(64));
  EXPECT_FALSE(Report.consistent());
  EXPECT_EQ(Report.Contradicted, 1u);
  const LoopConsistency *Loop = Report.byLocation("sim.cpp:10");
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Loop->Verdict, ConsistencyVerdict::Contradicted);
  EXPECT_FALSE(Loop->StaticConflict);
  EXPECT_TRUE(Loop->MeasuredConflict);
}

/// A measured conflict in a loop the model has no descriptors for is
/// reduced evidence, not a contradiction.
TEST(ConsistencyCheckerTest, UncoveredLoopIsMeasuredOnly) {
  BinaryImage Image = kernelImage();
  ProgramStructure Structure(Image);
  ProfileResult Measured =
      Profiler().profileExact(canonicalizeTrace(recordColumnWalk()), Structure);
  StaticAccessModel Empty;
  Empty.SourceFile = "sim.cpp";
  StaticAnalysisResult Static =
      StaticConflictAnalyzer().analyze(Empty, &Structure);
  ConsistencyReport Report = ConsistencyChecker().check(Static, Measured);
  const LoopConsistency *Loop = Report.byLocation("sim.cpp:10");
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Loop->Verdict, ConsistencyVerdict::MeasuredOnly);
  EXPECT_TRUE(Report.consistent());
}

/// Every verdict enumerator names itself and parses back to itself;
/// the names are what `analyze --json` serializes, so a collision or
/// an "unknown" leak would corrupt stored reports.
TEST(ConsistencyCheckerTest, VerdictNamesRoundTrip) {
  const ConsistencyVerdict All[] = {
      ConsistencyVerdict::ConfirmedConflict,
      ConsistencyVerdict::ConfirmedClean, ConsistencyVerdict::StaticOnly,
      ConsistencyVerdict::MeasuredOnly, ConsistencyVerdict::Contradicted};
  std::set<std::string> Names;
  for (ConsistencyVerdict Verdict : All) {
    const std::string Name = consistencyVerdictName(Verdict);
    EXPECT_FALSE(Name.empty());
    EXPECT_NE(Name, "unknown");
    ConsistencyVerdict Parsed;
    ASSERT_TRUE(consistencyVerdictFromName(Name, Parsed)) << Name;
    EXPECT_EQ(Parsed, Verdict) << Name;
    Names.insert(Name);
  }
  EXPECT_EQ(Names.size(), std::size(All)) << "verdict names collide";
  ConsistencyVerdict Unused;
  EXPECT_FALSE(consistencyVerdictFromName("no-such-verdict", Unused));
  EXPECT_FALSE(consistencyVerdictFromName("unknown", Unused));
}

/// Quantitative join: a truthful model's predicted MRC tracks the
/// measured curve, and its divergence stays far under the
/// contradiction threshold.
TEST(ConsistencyCheckerTest, TruthfulModelMrcScoresSmall) {
  BinaryImage Image = kernelImage();
  ProgramStructure Structure(Image);
  const Trace T = canonicalizeTrace(recordColumnWalk());
  ProfileResult Measured = Profiler().profileExact(T, Structure);
  StaticConflictAnalyzer Analyzer;
  StaticAnalysisResult Static =
      Analyzer.analyze(kernelModel(RowStride), &Structure);
  ASSERT_TRUE(Static.ReuseEstimated);
  ASSERT_FALSE(Static.ProgramMrc.empty());

  const MeasuredCurves Curves = ConsistencyChecker::measuredCurvesFromTrace(
      T, &Structure, Analyzer.options().Geometry);
  ConsistencyChecker Checker;
  ConsistencyReport Report = Checker.check(Static, Measured, &Curves);
  EXPECT_TRUE(Report.consistent());
  ASSERT_TRUE(Report.HasProgramMrc);
  EXPECT_LE(Report.ProgramMrcMaxAbsError,
            Checker.options().MrcContradictionThreshold);
  EXPECT_FALSE(Report.ProgramMrcContradicted);
  const LoopConsistency *Loop = Report.byLocation("sim.cpp:10");
  ASSERT_NE(Loop, nullptr);
  ASSERT_TRUE(Loop->HasMrc);
  EXPECT_GT(Loop->MrcPoints, 0u);
  EXPECT_LE(Loop->MrcMaxAbsError, Checker.options().MrcContradictionThreshold);
  EXPECT_LE(Loop->MrcMeanAbsError, Loop->MrcMaxAbsError);
}

/// A model that mis-states the *footprint* — it claims the loop cycles
/// over 8 rows when the trace walks 500 — predicts near-perfect reuse
/// while the measurement misses heavily: the quantitative check must
/// contradict it even though stack-distance curves are blind to set
/// placement.
TEST(ConsistencyCheckerTest, MisModeledFootprintIsMrcContradicted) {
  BinaryImage Image = kernelImage();
  ProgramStructure Structure(Image);
  const Trace T = canonicalizeTrace(recordColumnWalk());
  ProfileResult Measured = Profiler().profileExact(T, Structure);

  StaticAccessModel Lying = kernelModel(RowStride);
  Lying.Accesses[0].Levels = {{Sweeps * (Rows / 8), 0}, {8, RowStride}};
  StaticConflictAnalyzer Analyzer;
  StaticAnalysisResult Static = Analyzer.analyze(Lying, &Structure);
  ASSERT_TRUE(Static.ReuseEstimated);

  const MeasuredCurves Curves = ConsistencyChecker::measuredCurvesFromTrace(
      T, &Structure, Analyzer.options().Geometry);
  ConsistencyReport Report =
      ConsistencyChecker().check(Static, Measured, &Curves);
  EXPECT_FALSE(Report.consistent());
  ASSERT_TRUE(Report.HasProgramMrc);
  EXPECT_TRUE(Report.ProgramMrcContradicted);
  const LoopConsistency *Loop = Report.byLocation("sim.cpp:10");
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Loop->Verdict, ConsistencyVerdict::Contradicted);
}

/// The imbalance-bar rule both sides share: victims are sets whose
/// misses exceed twice the mean over utilized sets.
TEST(ConsistencyCheckerTest, VictimSetBarRule) {
  ConsistencyChecker Checker;
  EXPECT_TRUE(Checker.victimSetsFromMisses({}).empty());
  EXPECT_TRUE(Checker.victimSetsFromMisses({0, 0, 0, 0}).empty());
  // Balanced walk: every set at the mean, nobody above the bar.
  EXPECT_TRUE(Checker.victimSetsFromMisses({10, 10, 10, 10}).empty());
  // One set dominating: mean 32.5, bar 65, only set 0 above it.
  EXPECT_EQ(Checker.victimSetsFromMisses({100, 10, 10, 10}),
            std::vector<uint32_t>{0});
  // Zero-miss sets do not dilute the mean: utilized sets are {50, 10},
  // mean 30, bar 60 — nobody qualifies.
  EXPECT_TRUE(Checker.victimSetsFromMisses({50, 0, 0, 10}).empty());
}

} // namespace
