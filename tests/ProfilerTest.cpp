//===- tests/ProfilerTest.cpp - End-to-end pipeline tests ------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"

#include "cfg/SyntheticCodeGen.h"
#include "core/Report.h"

#include "gtest/gtest.h"

using namespace ccprof;

namespace {

/// A synthetic two-loop program: loop at line 10 performs a conflicting
/// set-stride column walk; loop at line 20 streams contiguously.
BinaryImage testImage() {
  LoopSpec Conflict;
  Conflict.HeaderLine = 10;
  Conflict.EndLine = 13;
  Conflict.AccessLines = {11};
  LoopSpec Stream;
  Stream.HeaderLine = 20;
  Stream.EndLine = 23;
  Stream.AccessLines = {21};
  FunctionSpec F;
  F.Name = "main";
  F.StartLine = 1;
  F.EndLine = 30;
  F.Loops = {Conflict, Stream};
  return lowerToBinary("two.cpp", {F});
}

/// Builds the matching trace: Rounds x 32 strided accesses from the
/// conflict loop, Rounds x 512 streaming accesses from the clean loop.
Trace testTrace(int Rounds) {
  Trace T;
  SiteId ConflictSite = T.site("two.cpp", 11, "main");
  SiteId StreamSite = T.site("two.cpp", 21, "main");
  constexpr uint64_t ConflictBase = 0x10000000;
  constexpr uint64_t StreamBase = 0x20000000;
  T.registerAllocation("victim[]", reinterpret_cast<int *>(ConflictBase),
                       32 * 4096 + 64);
  T.registerAllocation("stream[]", reinterpret_cast<int *>(StreamBase),
                       512 * 64);
  for (int Round = 0; Round < Rounds; ++Round) {
    for (uint64_t Row = 0; Row < 32; ++Row)
      T.recordLoad(ConflictSite, ConflictBase + Row * 4096, 4);
    for (uint64_t Line = 0; Line < 512; ++Line)
      T.recordLoad(StreamSite, StreamBase + Line * 64, 4);
  }
  return T;
}

ProfileOptions exactishOptions() {
  ProfileOptions Options;
  Options.Sampling.Kind = SamplingKind::Fixed;
  Options.Sampling.MeanPeriod = 1;
  return Options;
}

} // namespace

TEST(ProfilerTest, FlagsTheConflictingLoopOnly) {
  Trace T = testTrace(20);
  BinaryImage Image = testImage();
  ProgramStructure S(Image);
  Profiler P(exactishOptions());
  ProfileResult Result = P.profileExact(T, S);

  const LoopConflictReport *Conflict = Result.byLocation("two.cpp:10");
  const LoopConflictReport *Clean = Result.byLocation("two.cpp:20");
  ASSERT_NE(Conflict, nullptr);
  ASSERT_NE(Clean, nullptr);
  EXPECT_TRUE(Conflict->ConflictPredicted);
  EXPECT_GT(Conflict->ContributionFactor, 0.8);
  EXPECT_FALSE(Clean->ConflictPredicted);
  EXPECT_LT(Clean->ContributionFactor, 0.25);
  // The conflicting walk reuses one set; the stream covers all 64.
  EXPECT_EQ(Conflict->SetsUtilized, 1u);
  EXPECT_EQ(Clean->SetsUtilized, 64u);
}

TEST(ProfilerTest, DataCentricAttributionNamesTheVictim) {
  Trace T = testTrace(20);
  BinaryImage Image = testImage();
  ProgramStructure S(Image);
  Profiler P(exactishOptions());
  ProfileResult Result = P.profileExact(T, S);
  const LoopConflictReport *Conflict = Result.byLocation("two.cpp:10");
  ASSERT_NE(Conflict, nullptr);
  ASSERT_FALSE(Conflict->DataStructures.empty());
  EXPECT_EQ(Conflict->DataStructures[0].Name, "victim[]");
  EXPECT_DOUBLE_EQ(Conflict->DataStructures[0].Share, 1.0);
}

TEST(ProfilerTest, MissContributionSumsToOne) {
  Trace T = testTrace(10);
  BinaryImage Image = testImage();
  ProgramStructure S(Image);
  Profiler P(exactishOptions());
  ProfileResult Result = P.profileExact(T, S);
  double Total = 0.0;
  uint64_t Samples = 0;
  for (const LoopConflictReport &Loop : Result.Loops) {
    Total += Loop.MissContribution;
    Samples += Loop.Samples;
  }
  EXPECT_NEAR(Total, 1.0, 1e-9);
  EXPECT_EQ(Samples, Result.Samples);
}

TEST(ProfilerTest, HottestIsSortedFirst) {
  Trace T = testTrace(10);
  BinaryImage Image = testImage();
  ProgramStructure S(Image);
  Profiler P(exactishOptions());
  ProfileResult Result = P.profileExact(T, S);
  ASSERT_GE(Result.Loops.size(), 2u);
  for (size_t I = 1; I < Result.Loops.size(); ++I)
    EXPECT_GE(Result.Loops[I - 1].Samples, Result.Loops[I].Samples);
  EXPECT_EQ(Result.hottest(), &Result.Loops.front());
}

TEST(ProfilerTest, EmptyTraceProducesEmptyResult) {
  Trace T;
  BinaryImage Image = testImage();
  ProgramStructure S(Image);
  Profiler P;
  ProfileResult Result = P.profile(T, S);
  EXPECT_EQ(Result.TraceRefs, 0u);
  EXPECT_EQ(Result.L1Misses, 0u);
  EXPECT_EQ(Result.Samples, 0u);
  EXPECT_TRUE(Result.Loops.empty());
  EXPECT_EQ(Result.hottest(), nullptr);
  EXPECT_EQ(Result.byLocation("two.cpp:10"), nullptr);
}

TEST(ProfilerTest, UnknownIpsAttributeToUnknownContext) {
  Trace T;
  // Record misses with UnknownSite (an IP outside any registered code,
  // like the closed-source MKL case).
  for (uint64_t Row = 0; Row < 64; ++Row)
    T.recordLoad(UnknownSite, 0x5000000 + Row * 4096, 4);
  BinaryImage Image = testImage();
  ProgramStructure S(Image);
  Profiler P(exactishOptions());
  ProfileResult Result = P.profileExact(T, S);
  ASSERT_EQ(Result.Loops.size(), 1u);
  EXPECT_EQ(Result.Loops[0].Location, "<unknown code>");
  EXPECT_TRUE(Result.Loops[0].ConflictPredicted);
}

TEST(ProfilerTest, LoopFreeSitesAttributeToLine) {
  Trace T;
  SiteId S1 = T.site("two.cpp", 3, "main"); // line 3: outside both loops
  for (uint64_t Row = 0; Row < 64; ++Row)
    T.recordLoad(S1, 0x5000000 + Row * 64, 4);
  BinaryImage Image = testImage();
  ProgramStructure S(Image);
  Profiler P(exactishOptions());
  ProfileResult Result = P.profileExact(T, S);
  ASSERT_EQ(Result.Loops.size(), 1u);
  EXPECT_NE(Result.Loops[0].Location.find("two.cpp:3"), std::string::npos);
  EXPECT_NE(Result.Loops[0].Location.find("no loop"), std::string::npos);
}

TEST(ProfilerTest, SampledProfileApproximatesExact) {
  Trace T = testTrace(400); // plenty of misses for sparse sampling
  BinaryImage Image = testImage();
  ProgramStructure S(Image);

  Profiler Exact(exactishOptions());
  ProfileResult Ground = Exact.profileExact(T, S);

  ProfileOptions Sampled;
  Sampled.Sampling.Kind = SamplingKind::Bursty;
  Sampled.Sampling.MeanPeriod = 97;
  Profiler Approx(Sampled);
  ProfileResult Estimate = Approx.profile(T, S);

  const LoopConflictReport *GroundHot = Ground.byLocation("two.cpp:10");
  const LoopConflictReport *EstimateHot = Estimate.byLocation("two.cpp:10");
  ASSERT_NE(GroundHot, nullptr);
  ASSERT_NE(EstimateHot, nullptr);
  EXPECT_EQ(GroundHot->ConflictPredicted, EstimateHot->ConflictPredicted);
  EXPECT_NEAR(GroundHot->MissContribution, EstimateHot->MissContribution,
              0.15);
  // The sampled run sees roughly misses/period samples.
  EXPECT_GT(Estimate.Samples, Ground.L1Misses / 97 / 2);
  EXPECT_LT(Estimate.Samples, Ground.L1Misses / 97 * 2);
}

TEST(ProfilerTest, InsignificantLoopsAreNotFlagged) {
  // A tiny conflicting loop below the significance threshold must not
  // be flagged (paper Table 1: low RCD + low contribution =>
  // insignificant impact).
  Trace T = testTrace(300);
  // Append a minor context: a conflicting walk well below 1% of the
  // misses.
  SiteId MinorSite = T.site("two.cpp", 3, "main");
  for (uint64_t Row = 0; Row < 50; ++Row)
    T.recordLoad(MinorSite, 0x40000000 + Row * 4096, 4);
  BinaryImage Image = testImage();
  ProgramStructure S(Image);
  Profiler P(exactishOptions());
  ProfileResult Result = P.profileExact(T, S);
  const LoopConflictReport *Minor = nullptr;
  for (const LoopConflictReport &Loop : Result.Loops)
    if (Loop.Location.find("two.cpp:3") != std::string::npos)
      Minor = &Loop;
  ASSERT_NE(Minor, nullptr);
  EXPECT_GT(Minor->ContributionFactor, 0.8) << "the signature is there...";
  EXPECT_FALSE(Minor->Significant);
  EXPECT_FALSE(Minor->ConflictPredicted) << "...but the loop is too cold";
}

TEST(ProfilerTest, L2LevelProfilingUsesPhysicalSets) {
  // A walk striding by the L2 set stride (32KiB) conflicts in L2 under
  // identity mapping; L1 sees it as a balanced (multi-set) pattern.
  Trace T;
  SiteId Site = T.site("two.cpp", 11, "main");
  T.registerAllocation("big[]", reinterpret_cast<int *>(0x10000000),
                       64ull * 32768 + 64);
  CacheGeometry L2(256 * 1024, 64, 8); // 512 sets, 32KiB stride
  for (int Round = 0; Round < 20; ++Round)
    for (uint64_t Row = 0; Row < 64; ++Row)
      T.recordLoad(Site, 0x10000000 + Row * L2.setStrideBytes(), 4);

  BinaryImage Image = testImage();
  ProgramStructure S(Image);

  ProfileOptions L2Options = exactishOptions();
  L2Options.Level = ProfileLevel::L2;
  L2Options.L2 = L2;
  L2Options.Mapping = PagePolicy::Identity;
  Profiler P2(L2Options);
  ProfileResult AtL2 = P2.profileExact(T, S);
  ASSERT_NE(AtL2.hottest(), nullptr);
  EXPECT_EQ(AtL2.NumSets, 512u);
  EXPECT_TRUE(AtL2.hottest()->ConflictPredicted)
      << "32KiB-strided walk must conflict at L2";
  EXPECT_EQ(AtL2.hottest()->SetsUtilized, 1u);
  // Data-centric attribution still resolves the (virtual) allocation.
  ASSERT_FALSE(AtL2.hottest()->DataStructures.empty());
  EXPECT_EQ(AtL2.hottest()->DataStructures[0].Name, "big[]");

  // Under a shuffled page layout the same walk spreads — but only
  // across the sets reachable from a fixed page offset: a 4KiB page
  // covers 64 of the 512 sets, so only the frame's low 3 bits feed the
  // index and at most 8 distinct sets are reachable.
  ProfileOptions Shuffled = L2Options;
  Shuffled.Mapping = PagePolicy::Shuffled;
  Profiler P3(Shuffled);
  ProfileResult Scattered = P3.profileExact(T, S);
  ASSERT_NE(Scattered.hottest(), nullptr);
  EXPECT_GT(Scattered.hottest()->SetsUtilized, 2u);
  EXPECT_LE(Scattered.hottest()->SetsUtilized, 8u)
      << "a fixed page offset can only reach numSets/linesPerPage sets";
}

TEST(ProfilerTest, ReportRenderingContainsVerdicts) {
  Trace T = testTrace(20);
  BinaryImage Image = testImage();
  ProgramStructure S(Image);
  Profiler P(exactishOptions());
  ProfileResult Result = P.profileExact(T, S);
  std::string Report = renderProfileReport(Result, "two");
  EXPECT_NE(Report.find("two.cpp:10"), std::string::npos);
  EXPECT_NE(Report.find("CONFLICT"), std::string::npos);
  EXPECT_NE(Report.find("victim[]"), std::string::npos);
}
