//===- tests/SyntheticCodeGenTest.cpp - Loop-spec lowering tests ----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cfg/SyntheticCodeGen.h"

#include "cfg/Cfg.h"
#include "cfg/LoopNest.h"

#include "gtest/gtest.h"

using namespace ccprof;

namespace {

FunctionSpec simpleLoopFunction() {
  LoopSpec Loop;
  Loop.HeaderLine = 10;
  Loop.EndLine = 14;
  Loop.AccessLines = {11, 12};
  Loop.StatementLines = {13};

  FunctionSpec Function;
  Function.Name = "kernel";
  Function.StartLine = 5;
  Function.EndLine = 20;
  Function.Loops = {Loop};
  return Function;
}

} // namespace

TEST(SyntheticCodeGenTest, LoweredLoopIsRediscovered) {
  BinaryImage Image = lowerToBinary("k.cpp", {simpleLoopFunction()});
  ASSERT_EQ(Image.functions().size(), 1u);
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  LoopNest Nest = LoopNest::analyze(Graph);
  ASSERT_EQ(Nest.numLoops(), 1u);
  const LoopInfo &Loop = Nest.loop(0);
  EXPECT_TRUE(Loop.IsReducible);
  EXPECT_EQ(Graph.block(Loop.Header).MinLine, 10u);
  EXPECT_EQ(Loop.MinLine, 10u);
  EXPECT_EQ(Loop.MaxLine, 14u);
}

TEST(SyntheticCodeGenTest, AccessLinesAreMemoryInstructions) {
  BinaryImage Image = lowerToBinary("k.cpp", {simpleLoopFunction()});
  size_t Accesses = 0;
  for (const Instruction &Insn : Image.instructions()) {
    if (Insn.IsMemoryAccess) {
      ++Accesses;
      EXPECT_TRUE(Insn.Line == 11 || Insn.Line == 12);
    }
  }
  EXPECT_EQ(Accesses, 2u);
}

TEST(SyntheticCodeGenTest, TripleNestRediscoveredWithDepths) {
  LoopSpec K;
  K.HeaderLine = 6;
  K.EndLine = 8;
  K.AccessLines = {7};
  LoopSpec J;
  J.HeaderLine = 5;
  J.EndLine = 8;
  J.Children = {K};
  LoopSpec I;
  I.HeaderLine = 4;
  I.EndLine = 9;
  I.Children = {J};
  FunctionSpec F;
  F.Name = "jacobi";
  F.StartLine = 1;
  F.EndLine = 12;
  F.Loops = {I};

  BinaryImage Image = lowerToBinary("j.c", {F});
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  LoopNest Nest = LoopNest::analyze(Graph);
  ASSERT_EQ(Nest.numLoops(), 3u);
  uint32_t Depths[3] = {};
  for (LoopId L = 0; L < 3; ++L)
    ++Depths[Nest.loop(L).Depth - 1];
  EXPECT_EQ(Depths[0], 1u);
  EXPECT_EQ(Depths[1], 1u);
  EXPECT_EQ(Depths[2], 1u);

  auto Innermost = Nest.innermostLoopForLine(7);
  ASSERT_TRUE(Innermost.has_value());
  EXPECT_EQ(Nest.loop(*Innermost).Depth, 3u);
  EXPECT_EQ(Graph.block(Nest.loop(*Innermost).Header).MinLine, 6u);
}

TEST(SyntheticCodeGenTest, SequentialLoopsDoNotNest) {
  LoopSpec First;
  First.HeaderLine = 10;
  First.EndLine = 12;
  First.AccessLines = {11};
  LoopSpec Second;
  Second.HeaderLine = 20;
  Second.EndLine = 22;
  Second.AccessLines = {21};
  FunctionSpec F;
  F.Name = "two";
  F.StartLine = 5;
  F.EndLine = 30;
  F.Loops = {First, Second};

  BinaryImage Image = lowerToBinary("two.cpp", {F});
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  LoopNest Nest = LoopNest::analyze(Graph);
  ASSERT_EQ(Nest.numLoops(), 2u);
  EXPECT_EQ(Nest.loop(0).Depth, 1u);
  EXPECT_EQ(Nest.loop(1).Depth, 1u);
  EXPECT_FALSE(Nest.loop(0).Parent.has_value());
  EXPECT_FALSE(Nest.loop(1).Parent.has_value());
}

TEST(SyntheticCodeGenTest, MultipleFunctions) {
  FunctionSpec A = simpleLoopFunction();
  A.Name = "first";
  FunctionSpec B;
  B.Name = "second";
  B.StartLine = 40;
  B.EndLine = 45;
  B.AccessLines = {42};

  BinaryImage Image = lowerToBinary("multi.cpp", {A, B});
  ASSERT_EQ(Image.functions().size(), 2u);
  EXPECT_EQ(Image.functions()[0].Name, "first");
  EXPECT_EQ(Image.functions()[1].Name, "second");

  // The loop-free function has no loops.
  Cfg SecondGraph = Cfg::build(Image, Image.functions()[1]);
  EXPECT_EQ(LoopNest::analyze(SecondGraph).numLoops(), 0u);
}

TEST(SyntheticCodeGenTest, EveryBranchTargetStaysInFunction) {
  LoopSpec Nested;
  Nested.HeaderLine = 3;
  Nested.EndLine = 5;
  Nested.AccessLines = {4};
  LoopSpec Outer;
  Outer.HeaderLine = 2;
  Outer.EndLine = 6;
  Outer.Children = {Nested};
  FunctionSpec F;
  F.Name = "f";
  F.StartLine = 1;
  F.EndLine = 7;
  F.Loops = {Outer};

  BinaryImage Image = lowerToBinary("span.cpp", {F});
  const BinaryFunction &Function = Image.functions()[0];
  uint64_t Low = Image.instructions()[Function.FirstInsn].Addr;
  uint64_t High =
      Image.instructions()[Function.FirstInsn + Function.NumInsns - 1].Addr;
  for (size_t I = Function.FirstInsn,
              E = Function.FirstInsn + Function.NumInsns;
       I < E; ++I) {
    const Instruction &Insn = Image.instructions()[I];
    if (Insn.Kind == InsnKind::Jump || Insn.Kind == InsnKind::CondBranch) {
      EXPECT_GE(Insn.Target, Low);
      EXPECT_LE(Insn.Target, High);
    }
  }
}
