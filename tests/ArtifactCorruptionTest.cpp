//===- tests/ArtifactCorruptionTest.cpp - Hostile-bytes decode harness ----===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Deterministic corruption-injection harness for the persistence layer:
// every injected fault — single-bit flips over the whole capsule,
// truncation at every byte boundary, oversized element counts, version
// downgrades — must be rejected by ProfileArtifact / Trace decoding
// with a non-empty diagnostic; never a crash, hang, over-allocation, or
// silent wrong data (the suite runs under ASan+UBSan in CI). Also
// covers the atomic-save crash property, ArtifactStore::validate, and
// loading the checked-in v1 golden fixtures written before the format
// grew its checksum.
//
//===----------------------------------------------------------------------===//

#include "pipeline/ArtifactStore.h"
#include "trace/BinaryIO.h"
#include "trace/Trace.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace ccprof;
namespace fs = std::filesystem;

#ifndef CCPROF_GOLDEN_DIR
#error "CCPROF_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

std::string goldenPath(const std::string &Name) {
  return (fs::path(CCPROF_GOLDEN_DIR) / Name).string();
}

std::string serialize(const ProfileArtifact &Artifact) {
  std::stringstream Stream;
  EXPECT_TRUE(Artifact.writeTo(Stream));
  return Stream.str();
}

std::string serialize(const Trace &T) {
  std::stringstream Stream;
  EXPECT_TRUE(T.writeTo(Stream));
  return Stream.str();
}

bool loadArtifact(std::string_view Bytes, std::string *Error = nullptr) {
  ProfileArtifact Loaded;
  return ProfileArtifact::readFromBytes(Bytes, Loaded, Error);
}

bool loadTrace(const std::string &Bytes, std::string *Error = nullptr) {
  std::istringstream In(Bytes);
  Trace Loaded;
  return Trace::readFrom(In, Loaded, Error);
}

/// A hand-built artifact that populates every decode path: loop refs,
/// both histograms, per-set misses, and data-structure attribution.
ProfileArtifact makeRichArtifact() {
  ProfileArtifact A;
  A.Provenance.Job.WorkloadName = "Symmetrization";
  A.Result.TraceRefs = 100000;
  A.Result.L1Misses = 20000;
  A.Result.Samples = 1000;
  A.Result.L1MissRatio = 0.2;
  A.Result.NumSets = 64;
  A.Result.RcdThreshold = 8;
  for (int I = 0; I < 2; ++I) {
    LoopConflictReport Loop;
    Loop.Location = I == 0 ? "symm.cpp:12" : "symm.cpp:40";
    Loop.Loop = LoopRef{static_cast<uint32_t>(I), 0};
    Loop.Samples = 500;
    Loop.MissContribution = 0.5;
    Loop.SetsUtilized = 9;
    Loop.ContributionFactor = 0.7;
    Loop.MeanRcd = 4.5;
    Loop.MedianRcd = 4;
    Loop.ConflictProbability = 0.9;
    Loop.Significant = true;
    Loop.ConflictPredicted = true;
    for (uint64_t K = 1; K <= 8; ++K)
      Loop.Rcd.add(K, K * 3);
    Loop.Periods.RunLengths.add(2, 5);
    Loop.Periods.RunLengths.add(7, 1);
    Loop.PerSetMisses.assign(64, 11);
    Loop.DataStructures.push_back({"A[]", 400, 0.8});
    Loop.DataStructures.push_back({"B[]", 100, 0.2});
    A.Result.Loops.push_back(std::move(Loop));
  }
  return A;
}

/// A small trace exercising every trace decode path.
Trace makeRichTrace() {
  Trace T;
  SiteId Load = T.site("a.cpp", 10, "kernel");
  SiteId Store = T.site("a.cpp", 11, "kernel");
  T.allocations().recordAllocation("A[]", 0x1000, 4096);
  T.allocations().recordAllocation("B[]", 0x3000, 4096);
  T.allocations().recordFree(0x3000);
  for (uint64_t I = 0; I < 16; ++I) {
    T.recordLoad(Load, 0x1000 + I * 64, 8);
    T.recordStore(Store, 0x1000 + I * 64, 8);
  }
  return T;
}

/// Rewrites the u64 at \p Offset and repairs the trailing CRC so only
/// the patched field, not the checksum, trips the decoder.
std::string patchU64AndFixCrc(std::string Bytes, size_t Offset,
                              uint64_t Value) {
  EXPECT_LE(Offset + 8, Bytes.size() - 4);
  for (int I = 0; I < 8; ++I)
    Bytes[Offset + I] = static_cast<char>(Value >> (8 * I));
  uint32_t Crc = bio::crc32(Bytes.data(), Bytes.size() - 4);
  for (int I = 0; I < 4; ++I)
    Bytes[Bytes.size() - 4 + I] = static_cast<char>(Crc >> (8 * I));
  return Bytes;
}

//===----------------------------------------------------------------------===//
// Hand-rolled v1 encoders (no trailing CRC) for oversized-count faults.
// Deliberately duplicates the writer's field order: this harness is a
// format lock as much as a fuzz probe.
//===----------------------------------------------------------------------===//

void writeV1JobSpec(std::ostream &Out, const std::string &Workload) {
  bio::writeString(Out, Workload);
  bio::writeU32(Out, 0); // variant
  bio::writeU32(Out, 0); // exact
  bio::writeU32(Out, 2); // sampler (bursty)
  bio::writeU64(Out, 1212);
  bio::writeU64(Out, 8);
  bio::writeU32(Out, 0); // level
  bio::writeU32(Out, 1); // mapping
  bio::writeU32(Out, 0); // repeat
  bio::writeU64(Out, 42); // seed
}

/// Header + provenance + summary of a v1 artifact, ending right where
/// the loop-table count goes.
std::string v1ArtifactThroughSummary() {
  std::ostringstream Out;
  bio::writeU32(Out, ArtifactMagic);
  bio::writeU32(Out, 1);
  writeV1JobSpec(Out, "Symmetrization");
  bio::writeU32(Out, 1); // merged runs
  bio::writeU64(Out, 0); // timestamp
  bio::writeString(Out, "ccprof-1");
  bio::writeU64(Out, 100000); // trace refs
  bio::writeU64(Out, 20000);  // L1 misses
  bio::writeU64(Out, 1000);   // samples
  bio::writeF64(Out, 0.2);    // miss ratio
  bio::writeU64(Out, 64);     // sets
  bio::writeU64(Out, 8);      // threshold
  return Out.str();
}

/// One valid loop record minus its trailing sequences, ending right
/// where the RCD histogram bucket count goes.
std::string v1LoopThroughFlags() {
  std::ostringstream Out;
  bio::writeString(Out, "symm.cpp:12");
  bio::writeU32(Out, 0); // has loop ref
  bio::writeU32(Out, 0);
  bio::writeU32(Out, 0);
  bio::writeU64(Out, 500);  // samples
  bio::writeF64(Out, 0.5);  // miss contribution
  bio::writeU64(Out, 9);    // sets utilized
  bio::writeF64(Out, 0.7);  // cf
  bio::writeF64(Out, 4.5);  // mean rcd
  bio::writeU64(Out, 4);    // median rcd
  bio::writeF64(Out, 0.9);  // p(conflict)
  bio::writeU32(Out, 1);    // significant
  bio::writeU32(Out, 1);    // predicted
  return Out.str();
}

std::string withU64(const std::string &Prefix, uint64_t Count) {
  std::ostringstream Out;
  Out << Prefix;
  bio::writeU64(Out, Count);
  return Out.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Golden fixtures: artifacts written before this PR still load
//===----------------------------------------------------------------------===//

TEST(GoldenFixtureTest, V1ArtifactStillLoads) {
  ProfileArtifact Loaded;
  std::string Error;
  ASSERT_TRUE(ProfileArtifact::loadFromFile(
      goldenPath("symmetrization_v1.ccpa"), Loaded, &Error))
      << Error;
  EXPECT_EQ(Loaded.FormatVersion, 1u);
  EXPECT_EQ(Loaded.Provenance.Job.WorkloadName, "Symmetrization");
  EXPECT_EQ(Loaded.Provenance.MergedRuns, 1u);
  EXPECT_EQ(Loaded.Result.NumSets, 64u);
  EXPECT_FALSE(Loaded.Result.Loops.empty());

  // Re-serializing upgrades to the current checksummed format.
  std::string Upgraded = serialize(Loaded);
  ProfileArtifact Again;
  ASSERT_TRUE(ProfileArtifact::readFromBytes(Upgraded, Again, &Error))
      << Error;
  EXPECT_EQ(Again.FormatVersion, ArtifactVersion);
  EXPECT_EQ(serialize(Again), Upgraded);
  EXPECT_EQ(Again.Result.Loops.size(), Loaded.Result.Loops.size());
}

TEST(GoldenFixtureTest, V1TraceStillLoads) {
  std::ifstream In(goldenPath("tiny_v1.cctr"), std::ios::binary);
  ASSERT_TRUE(In.is_open());
  Trace Loaded;
  std::string Error;
  ASSERT_TRUE(Trace::readFrom(In, Loaded, &Error)) << Error;
  EXPECT_EQ(Loaded.sites().size(), 2u);
  EXPECT_EQ(Loaded.allocations().size(), 2u);
  EXPECT_EQ(Loaded.size(), 64u);
  EXPECT_EQ(Loaded.records()[0].Addr, 0x1000u);
}

//===----------------------------------------------------------------------===//
// Truncation at every field boundary (and every byte in between)
//===----------------------------------------------------------------------===//

TEST(ArtifactCorruptionTest, EveryPrefixOfAnArtifactIsRejected) {
  const std::string Bytes = serialize(makeRichArtifact());
  ASSERT_GT(Bytes.size(), 100u);
  for (size_t Keep = 0; Keep < Bytes.size(); ++Keep) {
    std::string Error;
    EXPECT_FALSE(loadArtifact(std::string_view(Bytes).substr(0, Keep),
                              &Error))
        << "accepted a " << Keep << "-byte prefix of " << Bytes.size();
    EXPECT_FALSE(Error.empty()) << "no diagnostic for prefix " << Keep;
  }
}

TEST(TraceCorruptionTest, EveryPrefixOfATraceIsRejected) {
  const std::string Bytes = serialize(makeRichTrace());
  ASSERT_GT(Bytes.size(), 100u);
  for (size_t Keep = 0; Keep < Bytes.size(); ++Keep) {
    std::string Error;
    EXPECT_FALSE(loadTrace(Bytes.substr(0, Keep), &Error))
        << "accepted a " << Keep << "-byte prefix of " << Bytes.size();
    EXPECT_FALSE(Error.empty()) << "no diagnostic for prefix " << Keep;
  }
}

//===----------------------------------------------------------------------===//
// Bit flips: the checksum catches every single-bit fault
//===----------------------------------------------------------------------===//

TEST(ArtifactCorruptionTest, EverySingleBitFlipIsRejected) {
  std::string Bytes = serialize(makeRichArtifact());
  for (size_t Byte = 0; Byte < Bytes.size(); ++Byte)
    for (int Bit = 0; Bit < 8; ++Bit) {
      Bytes[Byte] ^= char(1 << Bit);
      std::string Error;
      EXPECT_FALSE(loadArtifact(Bytes, &Error))
          << "accepted a flip at byte " << Byte << " bit " << Bit;
      EXPECT_FALSE(Error.empty());
      Bytes[Byte] ^= char(1 << Bit);
    }
  // The pristine bytes still load: the harness corrupted, not the base.
  EXPECT_TRUE(loadArtifact(Bytes));
}

TEST(TraceCorruptionTest, SingleBitFlipsAreRejected) {
  std::string Bytes = serialize(makeRichTrace());
  for (size_t Byte = 0; Byte < Bytes.size(); ++Byte) {
    // One flip per byte keeps the sweep quick; the artifact test above
    // covers the full per-bit sweep of the shared CRC machinery.
    int Bit = static_cast<int>(Byte % 8);
    Bytes[Byte] ^= char(1 << Bit);
    std::string Error;
    EXPECT_FALSE(loadTrace(Bytes, &Error))
        << "accepted a flip at byte " << Byte << " bit " << Bit;
    EXPECT_FALSE(Error.empty());
    Bytes[Byte] ^= char(1 << Bit);
  }
  EXPECT_TRUE(loadTrace(Bytes));
}

TEST(ArtifactCorruptionTest, VersionDowngradeOfChecksummedBytesIsRejected) {
  // Rewriting the version field to 1 (a multi-bit fault) routes the
  // bytes to the checksum-less v1 parser; the trailing CRC then reads
  // as trailing garbage, so the capsule is still rejected.
  std::string Bytes = serialize(makeRichArtifact());
  Bytes[4] = 1;
  Bytes[5] = Bytes[6] = Bytes[7] = 0;
  std::string Error;
  EXPECT_FALSE(loadArtifact(Bytes, &Error));
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Oversized counts: bounded against remaining bytes, never allocated
//===----------------------------------------------------------------------===//

TEST(ArtifactCorruptionTest, OversizedLoopCountIsRejected) {
  for (uint64_t Count :
       {uint64_t(1) << 20, uint64_t(1) << 40, UINT64_MAX}) {
    std::string Error;
    EXPECT_FALSE(
        loadArtifact(withU64(v1ArtifactThroughSummary(), Count), &Error));
    EXPECT_NE(Error.find("loop table"), std::string::npos) << Error;
  }
}

TEST(ArtifactCorruptionTest, OversizedHistogramCountIsRejected) {
  std::string Bytes =
      withU64(v1ArtifactThroughSummary(), 1) + v1LoopThroughFlags();
  // Pad past the loop-table minimum-size gate so the fault is caught by
  // the histogram bound itself, inside the loop record.
  std::string Error;
  EXPECT_FALSE(loadArtifact(
      withU64(Bytes, UINT64_MAX / 2) + std::string(32, '\0'), &Error));
  EXPECT_NE(Error.find("loop record"), std::string::npos) << Error;
}

TEST(ArtifactCorruptionTest, OversizedPerSetAndDataCountsAreRejected) {
  // Valid empty histograms, then a hostile per-set count...
  std::string Loop =
      withU64(withU64(v1LoopThroughFlags(), 0), 0); // two empty histograms
  std::string Base = withU64(v1ArtifactThroughSummary(), 1) + Loop;
  std::string Error;
  EXPECT_FALSE(loadArtifact(withU64(Base, uint64_t(1) << 60), &Error));
  EXPECT_FALSE(Error.empty());

  // ...and, with an empty per-set table, a hostile data-structure count.
  std::string WithSets = withU64(Base, 0);
  EXPECT_FALSE(loadArtifact(withU64(WithSets, uint64_t(1) << 60), &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(ArtifactCorruptionTest, OversizedStringCountIsRejected) {
  // A workload-name length claiming more bytes than the file holds.
  std::ostringstream Out;
  bio::writeU32(Out, ArtifactMagic);
  bio::writeU32(Out, 1);
  bio::writeU32(Out, bio::MaxStringBytes + 7);
  Out << "short";
  std::string Error;
  EXPECT_FALSE(loadArtifact(Out.str(), &Error));
  EXPECT_NE(Error.find("provenance"), std::string::npos) << Error;
}

TEST(ArtifactCorruptionTest, OversizedCountWithValidChecksumIsRejected) {
  // Repairing the CRC after the patch proves the count bound itself —
  // not just the checksum — rejects the capsule.
  ProfileArtifact A = makeRichArtifact();
  A.Result.Loops.resize(1);
  std::string Bytes = serialize(A);
  // Offset of the loop-table count: header (8) + job spec (52 + name
  // length) + merged runs (4) + timestamp (8) + tool string (4 + tool
  // length) + summary (48).
  size_t Offset = 8 + 52 + A.Provenance.Job.WorkloadName.size() + 4 + 8 + 4 +
                  A.Provenance.Tool.size() + 48;
  {
    bio::ByteReader Probe(std::string_view(Bytes).substr(Offset));
    uint64_t Count = 0;
    ASSERT_TRUE(Probe.readU64(Count));
    ASSERT_EQ(Count, 1u) << "field-offset arithmetic drifted from the format";
  }
  std::string Patched = patchU64AndFixCrc(Bytes, Offset, uint64_t(1) << 50);
  std::string Error;
  EXPECT_FALSE(loadArtifact(Patched, &Error));
  EXPECT_NE(Error.find("loop table"), std::string::npos) << Error;
}

TEST(TraceCorruptionTest, OversizedRecordCountIsRejected) {
  // A v1 trace whose reference-stream count claims 2^61 records.
  std::ostringstream Out;
  bio::writeU32(Out, 0xCC9F07A1u); // trace magic
  bio::writeU32(Out, 1);
  bio::writeU32(Out, 0); // no sites
  bio::writeU32(Out, 0); // no allocations
  bio::writeU64(Out, uint64_t(1) << 61);
  std::string Error;
  EXPECT_FALSE(loadTrace(Out.str(), &Error));
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Atomic save: interrupted writes never corrupt the published artifact
//===----------------------------------------------------------------------===//

namespace {

class StoreDirTest : public ::testing::Test {
protected:
  void SetUp() override {
    // One directory per test case: ctest runs the cases as parallel
    // processes, and a shared path would let one case's SetUp wipe
    // another's store mid-test.
    const char *Case =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    Dir = (fs::path(::testing::TempDir()) /
           (std::string("ccprof-corruption-store-") + Case))
              .string();
    fs::remove_all(Dir);
    fs::create_directories(Dir);
  }
  void TearDown() override { fs::remove_all(Dir); }
  std::string Dir;
};

} // namespace

TEST_F(StoreDirTest, InterruptedSaveLeavesPreviousArtifactLoadable) {
  ProfileArtifact Old = makeRichArtifact();
  ProfileArtifact New = makeRichArtifact();
  New.Result.Loops.resize(1);
  ASSERT_NE(serialize(Old), serialize(New));

  ArtifactStore Store(Dir);
  std::string Error;
  std::string Path = Store.save(Old, &Error);
  ASSERT_FALSE(Path.empty()) << Error;

  // Replay the exact byte sequence saveToFile performs, crashing at
  // every write boundary.
  const std::string NewBytes = serialize(New);
  size_t Boundaries = (NewBytes.size() + 6) / 7;
  for (size_t CrashAfter = 1; CrashAfter <= Boundaries; ++CrashAfter) {
    bio::AtomicWriteOptions Options;
    Options.ChunkBytes = 7;
    size_t Chunks = 0;
    Options.CrashAt = [&](size_t) { return ++Chunks == CrashAfter; };
    EXPECT_FALSE(bio::atomicWriteFile(Path, NewBytes, &Error, Options));

    ProfileArtifact Loaded;
    ASSERT_TRUE(ProfileArtifact::loadFromFile(Path, Loaded, &Error))
        << "crash after chunk " << CrashAfter
        << " corrupted the published artifact: " << Error;
    EXPECT_EQ(serialize(Loaded), serialize(Old));

    // The stale temp is visible to validate but invisible to list.
    EXPECT_EQ(Store.listStaleTemporaries().size(), 1u);
    EXPECT_EQ(Store.list().size(), 1u);
  }

  // A completed save replaces the artifact and clears the temp.
  ASSERT_FALSE(Store.save(New, &Error).empty()) << Error;
  EXPECT_TRUE(Store.listStaleTemporaries().empty());
  ProfileArtifact Loaded;
  ASSERT_TRUE(ProfileArtifact::loadFromFile(Path, Loaded, &Error)) << Error;
  EXPECT_EQ(serialize(Loaded), serialize(New));
}

//===----------------------------------------------------------------------===//
// ArtifactStore::validate sweeps the store through the hardened loader
//===----------------------------------------------------------------------===//

TEST_F(StoreDirTest, ValidateReportsCorruptionAndStaleTemps) {
  ArtifactStore Store(Dir);
  std::string Error;
  ProfileArtifact Good = makeRichArtifact();
  ASSERT_FALSE(Store.save(Good, &Error).empty()) << Error;

  // A corrupt sibling: valid bytes with one byte flipped.
  std::string Bytes = serialize(Good);
  Bytes[Bytes.size() / 2] ^= 0x20;
  std::string BadPath = (fs::path(Dir) / "tampered.ccpa").string();
  std::ofstream(BadPath, std::ios::binary).write(Bytes.data(), Bytes.size());

  // A stale temp from a hypothetical interrupted save.
  std::ofstream((fs::path(Dir) / "half.ccpa.tmp").string()) << "partial";

  ArtifactValidationReport Report = Store.validate(&Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Report.Checked, 2u);
  EXPECT_FALSE(Report.ok());
  ASSERT_EQ(Report.Issues.size(), 1u);
  EXPECT_EQ(Report.Issues[0].Path, BadPath);
  EXPECT_FALSE(Report.Issues[0].Reason.empty());
  ASSERT_EQ(Report.StaleTemporaries.size(), 1u);

  // Repairing the store (delete the tampered file) turns the report ok.
  fs::remove(BadPath);
  fs::remove(fs::path(Dir) / "half.ccpa.tmp");
  Report = Store.validate(&Error);
  EXPECT_TRUE(Report.ok());
  EXPECT_EQ(Report.Checked, 1u);
  EXPECT_TRUE(Report.StaleTemporaries.empty());
}

TEST(ArtifactStoreErrorTest, MissingDirectoryIsAnErrorNotEmpty) {
  ArtifactStore Store("/no/such/ccprof-store-anywhere");
  std::string Error;
  EXPECT_TRUE(Store.list(&Error).empty());
  EXPECT_FALSE(Error.empty()) << "a missing store must not read as empty";

  std::string ValidateError;
  ArtifactValidationReport Report = Store.validate(&ValidateError);
  EXPECT_FALSE(ValidateError.empty());
  EXPECT_EQ(Report.Checked, 0u);
}

TEST_F(StoreDirTest, EmptyDirectoryListsCleanlyWithoutError) {
  ArtifactStore Store(Dir);
  std::string Error;
  EXPECT_TRUE(Store.list(&Error).empty());
  EXPECT_TRUE(Error.empty()) << Error;
}

TEST(ArtifactStoreCleanTest, CleanStaleTemporariesRemovesOnlyTemps) {
  // Own directory: StoreDirTest cases share one fixture path and this
  // test runs in parallel with them under ctest.
  std::string Dir =
      (fs::path(::testing::TempDir()) / "ccprof-clean-temps-store").string();
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  ArtifactStore Store(Dir);
  std::string Error;
  ProfileArtifact Good = makeRichArtifact();
  ASSERT_FALSE(Store.save(Good, &Error).empty()) << Error;

  // Two stranded atomic-write temporaries and one innocent bystander.
  std::ofstream((fs::path(Dir) / "a.ccpa.tmp").string()) << "partial";
  std::ofstream((fs::path(Dir) / "b.ccpa.tmp").string()) << "partial";
  std::ofstream((fs::path(Dir) / "notes.txt").string()) << "keep me";

  // Just-created temps look like a live writer's in-flight saves, so
  // the default age gate must leave them alone; MinAge 0 is the
  // unconditional offline sweep.
  std::vector<std::string> Failed;
  EXPECT_TRUE(Store.cleanStaleTemporaries(&Failed).empty());
  std::vector<std::string> Removed = Store.cleanStaleTemporaries(&Failed, 0);
  EXPECT_EQ(Removed.size(), 2u);
  EXPECT_TRUE(Failed.empty());
  for (const std::string &Path : Removed)
    EXPECT_FALSE(fs::exists(Path)) << Path;
  EXPECT_TRUE(fs::exists(fs::path(Dir) / "notes.txt"));
  EXPECT_TRUE(Store.listStaleTemporaries().empty());
  // The published artifact is untouched and the store validates clean.
  ArtifactValidationReport Report = Store.validate(&Error);
  EXPECT_TRUE(Report.ok());
  EXPECT_EQ(Report.Checked, 1u);

  // Idempotent: a second sweep removes nothing.
  EXPECT_TRUE(Store.cleanStaleTemporaries(nullptr, 0).empty());
  fs::remove_all(Dir);
}
