//===- tests/EndToEndTest.cpp - Paper-level integration tests --------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The headline claims, as tests:
//  * every case-study application is flagged as conflicting before the
//    padding/loop-order fix and clean after it (Fig. 9, Table 3);
//  * the 17 conflict-free Rodinia kernels are never flagged (Fig. 7);
//  * sparse PEBS-style sampling reaches the same verdicts as exact
//    simulation for stable conflict patterns (Sec. 3.3/5.2);
//  * the classifier trained on simulator ground truth cross-validates
//    perfectly at high sampling frequency (Fig. 8's left end).
//
//===----------------------------------------------------------------------===//

#include "core/CrossValidation.h"
#include "core/Profiler.h"
#include "workloads/Workload.h"

#include "gtest/gtest.h"

using namespace ccprof;

namespace {

/// Exact (simulation-grade) profile of one workload variant.
ProfileResult profileExactly(const Workload &W, WorkloadVariant Variant) {
  Trace T;
  W.run(Variant, &T);
  BinaryImage Image = W.makeBinary();
  ProgramStructure S(Image);
  Profiler P;
  return P.profileExact(T, S);
}

/// The report of the workload's paper-designated hot loop, falling back
/// to the hottest context (the optimized Kripke moves to another loop).
const LoopConflictReport *hotReport(const ProfileResult &Result,
                                    const Workload &W) {
  if (const LoopConflictReport *R = Result.byLocation(W.hotLoopLocation()))
    return R;
  return Result.hottest();
}

} // namespace

TEST(EndToEndTest, CaseStudiesConflictBeforeAndNotAfterOptimization) {
  for (const auto &W : makeCaseStudySuite()) {
    ProfileResult Before = profileExactly(*W, WorkloadVariant::Original);
    const LoopConflictReport *HotBefore = hotReport(Before, *W);
    ASSERT_NE(HotBefore, nullptr) << W->name();
    EXPECT_TRUE(HotBefore->ConflictPredicted)
        << W->name() << " original must be flagged (cf = "
        << HotBefore->ContributionFactor << ")";
    EXPECT_GT(HotBefore->ContributionFactor, 0.45) << W->name();

    ProfileResult After = profileExactly(*W, WorkloadVariant::Optimized);
    const LoopConflictReport *HotAfter = After.hottest();
    ASSERT_NE(HotAfter, nullptr) << W->name();
    EXPECT_FALSE(HotAfter->ConflictPredicted)
        << W->name() << " optimized must be clean (cf = "
        << HotAfter->ContributionFactor << ")";
    // Fig. 9: the short-RCD mass collapses after the fix.
    EXPECT_LT(HotAfter->ContributionFactor,
              HotBefore->ContributionFactor * 0.6)
        << W->name();
  }
}

TEST(EndToEndTest, CleanRodiniaKernelsAreNeverFlagged) {
  for (const auto &W : makeRodiniaSuite()) {
    if (W->expectConflicts())
      continue; // NW is the positive case, covered above.
    ProfileResult Result = profileExactly(*W, WorkloadVariant::Original);
    const LoopConflictReport *Hot = Result.hottest();
    ASSERT_NE(Hot, nullptr) << W->name();
    EXPECT_FALSE(Hot->ConflictPredicted) << W->name();
    // Sec. 5.1: clean hot loops put only 10-20% of misses below RCD 8.
    EXPECT_LT(Hot->ContributionFactor, 0.25) << W->name();
  }
}

TEST(EndToEndTest, NwMatchesPaperNarrative) {
  auto W = makeWorkloadByName("NW");
  ASSERT_NE(W, nullptr);
  ProfileResult Result = profileExactly(*W, WorkloadVariant::Original);

  // Sec. 5.1: "RCD of shorter than eight accounts for 88% of the L1
  // cache misses" in the conflicting tile-copy loops.
  const LoopConflictReport *Copy = Result.byLocation("needle.cpp:189");
  ASSERT_NE(Copy, nullptr);
  EXPECT_GT(Copy->ContributionFactor, 0.6);
  EXPECT_TRUE(Copy->ConflictPredicted);

  // Table 4: multiple loops are visible with nontrivial contributions,
  // and the copy loops dominate.
  EXPECT_GE(Result.Loops.size(), 6u);
  double CopyShare = 0.0;
  for (const char *Loc : {"needle.cpp:128", "needle.cpp:138",
                          "needle.cpp:189", "needle.cpp:199"})
    if (const LoopConflictReport *R = Result.byLocation(Loc))
      CopyShare += R->MissContribution;
  EXPECT_GT(CopyShare, 0.5);

  // Sec. 6.1: the conflicts are attributed to the two matrices.
  bool SawReference = false, SawInput = false;
  for (const DataStructureReport &D : Copy->DataStructures) {
    SawReference |= D.Name == "reference[]";
    SawInput |= D.Name == "input_itemsets[]";
  }
  EXPECT_TRUE(SawReference);
  // The :189 loop copies reference only; input shows up in :199.
  const LoopConflictReport *InputCopy = Result.byLocation("needle.cpp:199");
  ASSERT_NE(InputCopy, nullptr);
  for (const DataStructureReport &D : InputCopy->DataStructures)
    SawInput |= D.Name == "input_itemsets[]";
  EXPECT_TRUE(SawInput);
}

TEST(EndToEndTest, AdiExhibitsRcdOne) {
  // Sec. 6.2: "Both CCProf and simulation confirms the frequent conflict
  // with RCD of 1."
  auto W = makeWorkloadByName("ADI");
  ASSERT_NE(W, nullptr);
  ProfileResult Result = profileExactly(*W, WorkloadVariant::Original);
  const LoopConflictReport *Hot = Result.byLocation(W->hotLoopLocation());
  ASSERT_NE(Hot, nullptr);
  ASSERT_FALSE(Hot->Rcd.empty());
  EXPECT_EQ(Hot->Rcd.quantile(0.5), 1u);
}

TEST(EndToEndTest, SampledVerdictMatchesExactForStablePatterns) {
  // Himeno's conflict periods are too short for default-rate sampling
  // (the paper needed a 27x-overhead frequency for it); the other five
  // case studies must be caught at moderate rates.
  for (const auto &W : makeCaseStudySuite()) {
    if (W->name() == "HimenoBMT")
      continue;
    Trace T;
    W->run(WorkloadVariant::Original, &T);
    BinaryImage Image = W->makeBinary();
    ProgramStructure S(Image);

    ProfileOptions Options;
    Options.Sampling.Kind = SamplingKind::Bursty;
    Options.Sampling.MeanPeriod = 171; // the paper's best-F1 period
    Profiler P(Options);
    ProfileResult Result = P.profile(T, S);
    const LoopConflictReport *Hot = hotReport(Result, *W);
    ASSERT_NE(Hot, nullptr) << W->name();
    EXPECT_TRUE(Hot->ConflictPredicted) << W->name();
  }
}

TEST(EndToEndTest, ClassifierCrossValidatesOnMeasuredLoops) {
  // Rebuild the paper's Sec. 5.2 protocol: label loops with the exact
  // simulator pipeline, measure cf from high-frequency sampling, and
  // 8-fold cross-validate the logistic model. 6 conflicting case-study
  // loops + padded NW/ADI + 8 clean kernels = 16 loops.
  std::vector<double> X;
  std::vector<uint8_t> Y;

  // \returns false when the workload misses too rarely to be sampled at
  // this frequency (b+tree, myocyte: their working sets fit in L1).
  auto AddLoop = [&](const Workload &W, WorkloadVariant Variant,
                     bool Label) {
    Trace T;
    W.run(Variant, &T);
    BinaryImage Image = W.makeBinary();
    ProgramStructure S(Image);
    ProfileOptions Options;
    Options.Sampling.Kind = SamplingKind::Bursty;
    Options.Sampling.MeanPeriod = 171;
    Profiler P(Options);
    ProfileResult Result = P.profile(T, S);
    const LoopConflictReport *Hot = hotReport(Result, W);
    if (!Hot || Hot->Samples < 16)
      return false;
    X.push_back(Hot->ContributionFactor);
    Y.push_back(Label ? 1 : 0);
    return true;
  };

  for (const auto &W : makeCaseStudySuite())
    if (W->name() != "HimenoBMT")
      EXPECT_TRUE(AddLoop(*W, WorkloadVariant::Original, true))
          << W->name();
  auto Nw = makeWorkloadByName("NW");
  auto Adi = makeWorkloadByName("ADI");
  auto Fft = makeWorkloadByName("MKL-FFT");
  AddLoop(*Nw, WorkloadVariant::Optimized, false);
  AddLoop(*Adi, WorkloadVariant::Optimized, false);
  AddLoop(*Fft, WorkloadVariant::Optimized, false);
  size_t CleanAdded = 0;
  for (const auto &W : makeRodiniaSuite()) {
    if (W->expectConflicts())
      continue;
    if (AddLoop(*W, WorkloadVariant::Original, false) && ++CleanAdded == 8)
      break;
  }
  ASSERT_GE(X.size(), 14u);

  CrossValidationOptions Options;
  Options.Folds = 8;
  BinaryConfusion Confusion = crossValidate(X, Y, Options);
  EXPECT_GE(Confusion.f1(), 0.9)
      << "high-frequency sampling should recover the paper's F1 ~ 1";
}
