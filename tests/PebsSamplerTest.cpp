//===- tests/PebsSamplerTest.cpp - Sampling unit tests ---------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pmu/PebsSampler.h"

#include "gtest/gtest.h"

#include <vector>

using namespace ccprof;

namespace {

std::vector<MissEvent> syntheticStream(size_t N) {
  std::vector<MissEvent> Stream(N);
  for (size_t I = 0; I < N; ++I)
    Stream[I] = MissEvent{static_cast<SiteId>(I % 7 + 1), I * 64};
  return Stream;
}

} // namespace

TEST(PebsSamplerTest, PeriodOneCapturesEverything) {
  SamplingConfig Config;
  Config.Kind = SamplingKind::Fixed;
  Config.MeanPeriod = 1;
  PebsSampler Sampler(Config);
  auto Stream = syntheticStream(1000);
  auto Samples = Sampler.sampleStream(Stream);
  ASSERT_EQ(Samples.size(), 1000u);
  for (size_t I = 0; I < Samples.size(); ++I) {
    EXPECT_EQ(Samples[I].EventIndex, I);
    EXPECT_EQ(Samples[I].Event, Stream[I]);
  }
}

TEST(PebsSamplerTest, FixedPeriodSpacing) {
  SamplingConfig Config;
  Config.Kind = SamplingKind::Fixed;
  Config.MeanPeriod = 100;
  PebsSampler Sampler(Config);
  auto Stream = syntheticStream(10000);
  auto Samples = Sampler.sampleStream(Stream);
  ASSERT_GT(Samples.size(), 2u);
  // After the randomized initial phase, samples are exactly 100 apart.
  for (size_t I = 1; I < Samples.size(); ++I)
    EXPECT_EQ(Samples[I].EventIndex - Samples[I - 1].EventIndex, 100u);
  EXPECT_LE(Samples[0].EventIndex, 100u) << "initial phase within period";
}

TEST(PebsSamplerTest, MeanRateIsRespected) {
  for (SamplingKind Kind :
       {SamplingKind::Fixed, SamplingKind::UniformJitter,
        SamplingKind::Bursty}) {
    SamplingConfig Config;
    Config.Kind = Kind;
    Config.MeanPeriod = 50;
    PebsSampler Sampler(Config);
    auto Stream = syntheticStream(200000);
    auto Samples = Sampler.sampleStream(Stream);
    double Expected = 200000.0 / 50.0;
    EXPECT_GT(Samples.size(), Expected * 0.8)
        << "kind " << static_cast<int>(Kind);
    EXPECT_LT(Samples.size(), Expected * 1.2)
        << "kind " << static_cast<int>(Kind);
  }
}

TEST(PebsSamplerTest, BurstyProducesAdjacentSamples) {
  SamplingConfig Config;
  Config.Kind = SamplingKind::Bursty;
  Config.MeanPeriod = 100;
  Config.BurstLen = 8;
  PebsSampler Sampler(Config);
  auto Stream = syntheticStream(100000);
  auto Samples = Sampler.sampleStream(Stream);
  size_t Adjacent = 0;
  for (size_t I = 1; I < Samples.size(); ++I)
    if (Samples[I].EventIndex == Samples[I - 1].EventIndex + 1)
      ++Adjacent;
  // Each 8-sample burst contributes 7 adjacent pairs.
  EXPECT_GT(Adjacent, Samples.size() / 2)
      << "bursts must make consecutive misses visible";
}

TEST(PebsSamplerTest, JitterVariesGaps) {
  SamplingConfig Config;
  Config.Kind = SamplingKind::UniformJitter;
  Config.MeanPeriod = 100;
  Config.Jitter = 0.5;
  PebsSampler Sampler(Config);
  auto Stream = syntheticStream(100000);
  auto Samples = Sampler.sampleStream(Stream);
  ASSERT_GT(Samples.size(), 10u);
  uint64_t MinGap = ~0ull, MaxGap = 0;
  for (size_t I = 1; I < Samples.size(); ++I) {
    uint64_t Gap = Samples[I].EventIndex - Samples[I - 1].EventIndex;
    MinGap = std::min(MinGap, Gap);
    MaxGap = std::max(MaxGap, Gap);
    EXPECT_GE(Gap, 50u);
    EXPECT_LE(Gap, 150u);
  }
  EXPECT_NE(MinGap, MaxGap) << "jitter must actually vary the period";
}

TEST(PebsSamplerTest, DeterministicForFixedSeed) {
  SamplingConfig Config;
  Config.Seed = 1234;
  auto Stream = syntheticStream(50000);
  PebsSampler A(Config), B(Config);
  auto Sa = A.sampleStream(Stream);
  auto Sb = B.sampleStream(Stream);
  ASSERT_EQ(Sa.size(), Sb.size());
  for (size_t I = 0; I < Sa.size(); ++I)
    EXPECT_EQ(Sa[I].EventIndex, Sb[I].EventIndex);
}

TEST(PebsSamplerTest, CountersTrackEventsAndSamples) {
  SamplingConfig Config;
  Config.Kind = SamplingKind::Fixed;
  Config.MeanPeriod = 10;
  PebsSampler Sampler(Config);
  for (int I = 0; I < 100; ++I)
    Sampler.onEvent();
  EXPECT_EQ(Sampler.eventCount(), 100u);
  EXPECT_GE(Sampler.sampleCount(), 9u);
  EXPECT_LE(Sampler.sampleCount(), 10u);
}

TEST(PebsSamplerTest, EmptyStream) {
  PebsSampler Sampler(SamplingConfig{});
  std::vector<MissEvent> Empty;
  EXPECT_TRUE(Sampler.sampleStream(Empty).empty());
}

TEST(MissStreamTest, LoadsOnlyByDefault) {
  Trace T;
  SiteId S = T.site("x.cpp", 1, "");
  // Two loads and a store of the same cold line: one load miss event.
  T.recordLoad(S, 0x1000, 4);
  T.recordStore(S, 0x2000, 4);
  T.recordLoad(S, 0x1000, 4);
  CacheGeometry G(32 * 1024, 64, 8);
  auto Stream = collectL1MissStream(T, G);
  ASSERT_EQ(Stream.size(), 1u);
  EXPECT_EQ(Stream[0].Addr, 0x1000u);

  MissStreamOptions WithStores;
  WithStores.IncludeStores = true;
  auto StreamAll = collectL1MissStream(T, G, WithStores);
  EXPECT_EQ(StreamAll.size(), 2u);
}

TEST(MissStreamTest, StoresWarmTheCacheEvenWhenNotReported) {
  Trace T;
  SiteId S = T.site("x.cpp", 1, "");
  T.recordStore(S, 0x1000, 4); // store installs the line
  T.recordLoad(S, 0x1000, 4);  // load then hits: no event
  CacheGeometry G(32 * 1024, 64, 8);
  EXPECT_TRUE(collectL1MissStream(T, G).empty());
}

TEST(MissStreamTest, ConflictingWalkEmitsRepeatedMisses) {
  Trace T;
  SiteId S = T.site("x.cpp", 1, "");
  CacheGeometry G(32 * 1024, 64, 8);
  // 16 lines in one set, walked twice: every access misses (8 ways).
  for (int Round = 0; Round < 2; ++Round)
    for (uint64_t L = 0; L < 16; ++L)
      T.recordLoad(S, L * G.setStrideBytes(), 4);
  auto Stream = collectL1MissStream(T, G);
  EXPECT_EQ(Stream.size(), 32u);
  for (const MissEvent &E : Stream)
    EXPECT_EQ(G.setIndexOf(E.Addr), 0u);
}
