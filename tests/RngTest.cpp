//===- tests/RngTest.cpp - PRNG unit tests ---------------------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include "gtest/gtest.h"

#include <set>

using namespace ccprof;

TEST(RngTest, SplitMixIsDeterministic) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Xoshiro256 A(1), B(2);
  int Equal = 0;
  for (int I = 0; I < 100; ++I)
    if (A.next() == B.next())
      ++Equal;
  EXPECT_LT(Equal, 5);
}

TEST(RngTest, XoshiroIsDeterministic) {
  Xoshiro256 A(0xdead), B(0xdead);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, BoundedStaysInRange) {
  Xoshiro256 Rng(7);
  for (uint64_t Bound : {1ull, 2ull, 7ull, 64ull, 1212ull}) {
    for (int I = 0; I < 1000; ++I)
      EXPECT_LT(Rng.nextBounded(Bound), Bound);
  }
}

TEST(RngTest, BoundedCoversAllValues) {
  Xoshiro256 Rng(99);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 2000; ++I)
    Seen.insert(Rng.nextBounded(16));
  EXPECT_EQ(Seen.size(), 16u);
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Xoshiro256 Rng(123);
  constexpr uint64_t Bound = 10;
  constexpr int Draws = 100000;
  uint64_t Counts[Bound] = {};
  for (int I = 0; I < Draws; ++I)
    ++Counts[Rng.nextBounded(Bound)];
  for (uint64_t C : Counts) {
    // Expected 10000 per bucket; allow 10% slack (way beyond 6 sigma).
    EXPECT_GT(C, 9000u);
    EXPECT_LT(C, 11000u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Xoshiro256 Rng(5);
  double Sum = 0.0;
  for (int I = 0; I < 10000; ++I) {
    double X = Rng.nextDouble();
    EXPECT_GE(X, 0.0);
    EXPECT_LT(X, 1.0);
    Sum += X;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~uint64_t{0});
  Xoshiro256 Rng(1);
  EXPECT_GE(Rng(), Xoshiro256::min());
}
