//===- bench/static_analyze.cpp - Static screening payoff -----------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Measures what the static conflict-prediction engine buys the batch
// pipeline:
//
//  1. prediction throughput — wall time of StaticConflictAnalyzer over
//     every (workload, variant) access model, in isolation (no trace,
//     no simulation), reported as models/sec and modeled accesses/sec;
//
//  2. screening payoff — wall time of the shared-trace batch over the
//     full orig+opt matrix with and without --static-screen, the jobs
//     skipped, and a byte-identity check: every job that still runs
//     must produce exactly the bytes of the unscreened run.
//
// Emits machine-readable BENCH_staticscreen.json in the working
// directory so the perf trajectory is comparable across PRs; exits
// nonzero if the identity check fails or a screened-out verdict is
// unsound. `--json` suppresses the human-readable tables (the JSON
// file is always written).
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticConflictAnalyzer.h"
#include "pipeline/JobRunner.h"
#include "support/Table.h"
#include "workloads/Workload.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

using namespace ccprof;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

std::string serializeArtifact(const ProfileArtifact &Artifact) {
  std::stringstream Stream;
  Artifact.writeTo(Stream);
  return Stream.str();
}

struct ModelRow {
  std::string Name;
  uint64_t ModeledAccesses = 0;
  double Seconds = 0.0;
  bool ConflictFree = false;
};

} // namespace

int main(int Argc, char **Argv) {
  bool JsonOnly = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      JsonOnly = true;

  //===------------------------------------------------------------------===//
  // 1. Prediction throughput: analyze every model, no simulation.
  //===------------------------------------------------------------------===//

  std::vector<ModelRow> Models;
  double AnalysisSecs = 0.0;
  uint64_t TotalModeled = 0;
  for (const auto &W : makeCaseStudySuite()) {
    BinaryImage Image = W->makeBinary();
    ProgramStructure Structure(Image);
    for (WorkloadVariant Variant :
         {WorkloadVariant::Original, WorkloadVariant::Optimized}) {
      StaticAccessModel Model = W->accessModel(Variant);
      Clock::time_point Start = Clock::now();
      StaticAnalysisResult Result =
          StaticConflictAnalyzer().analyze(Model, &Structure);
      double Secs = secondsSince(Start);
      ModelRow Row;
      Row.Name = W->name() + std::string(Variant == WorkloadVariant::Original
                                             ? "-orig"
                                             : "-opt");
      Row.ModeledAccesses = Result.TotalAccesses;
      Row.Seconds = Secs;
      Row.ConflictFree = Result.conflictFree();
      Models.push_back(Row);
      AnalysisSecs += Secs;
      TotalModeled += Result.TotalAccesses;
    }
  }

  if (!JsonOnly) {
    std::cout << "=== Static prediction throughput ===\n\n";
    TextTable Table({"model", "modeled accesses", "analyze (s)",
                     "accesses/sec", "conflict-free"});
    for (const ModelRow &Row : Models)
      Table.addRow({Row.Name, std::to_string(Row.ModeledAccesses),
                    std::to_string(Row.Seconds),
                    std::to_string(static_cast<uint64_t>(
                        Row.Seconds > 0 ? Row.ModeledAccesses / Row.Seconds
                                        : 0)),
                    Row.ConflictFree ? "yes" : "no"});
    std::cout << Table.render() << "\n"
              << Models.size() << " models, " << TotalModeled
              << " modeled accesses in " << AnalysisSecs << " s ("
              << static_cast<uint64_t>(Models.size() / AnalysisSecs)
              << " models/sec)\n\n";
  }

  //===------------------------------------------------------------------===//
  // 2. Screening payoff: full orig+opt batch, with and without.
  //===------------------------------------------------------------------===//

  // Exact (unsampled) jobs: the configuration whose simulations are
  // expensive enough for skipping to pay — a sampled job costs less
  // than the analysis that would prove it skippable.
  BatchMatrix Matrix;
  Matrix.Workloads = defaultBatchWorkloads();
  Matrix.Variants = {WorkloadVariant::Original, WorkloadVariant::Optimized};
  Matrix.Exact = true;
  std::vector<JobSpec> Jobs = expandMatrix(Matrix);

  BatchExecOptions Exec;
  Exec.Workers = 4;

  // Warm-up: touch every workload once so first-run page faults do not
  // bias the unscreened measurement.
  runJobsShared(Jobs, Exec);

  Clock::time_point Start = Clock::now();
  std::vector<JobOutcome> Unscreened = runJobsShared(Jobs, Exec);
  double UnscreenedSecs = secondsSince(Start);

  Exec.StaticScreen = true;
  SharedBatchStats Stats;
  Start = Clock::now();
  std::vector<JobOutcome> Screened =
      runJobsShared(Jobs, Exec, 0, nullptr, nullptr, &Stats);
  double ScreenedSecs = secondsSince(Start);

  bool Identical = true;
  for (size_t I = 0; I < Jobs.size(); ++I) {
    if (!Unscreened[I].ok() || !Screened[I].ok()) {
      std::cerr << "error: job " << Jobs[I].key() << " failed\n";
      return 1;
    }
    if (!Screened[I].Skipped &&
        serializeArtifact(Screened[I].Artifact) !=
            serializeArtifact(Unscreened[I].Artifact))
      Identical = false;
    // Soundness: a skipped job's unscreened artifact must hold no
    // conflicting loop.
    if (Screened[I].Skipped)
      for (const LoopConflictReport &Loop :
           Unscreened[I].Artifact.Result.Loops)
        if (Loop.ConflictPredicted) {
          std::cerr << "error: screen skipped " << Jobs[I].key()
                    << " but simulation flags " << Loop.Location << "\n";
          return 1;
        }
  }

  if (!JsonOnly) {
    std::cout << "=== Screening payoff (" << Jobs.size() << " jobs, "
              << Exec.Workers << " workers) ===\n\n";
    TextTable Table({"mode", "wall time (s)", "jobs run", "jobs skipped",
                     "bytes == unscreened"});
    Table.addRow({"batch", std::to_string(UnscreenedSecs),
                  std::to_string(Jobs.size()), "0", "-"});
    Table.addRow({"batch --static-screen", std::to_string(ScreenedSecs),
                  std::to_string(Jobs.size() - Stats.StaticSkipped),
                  std::to_string(Stats.StaticSkipped),
                  Identical ? "yes" : "NO"});
    std::cout << Table.render() << "\nspeedup: "
              << (ScreenedSecs > 0 ? UnscreenedSecs / ScreenedSecs : 0)
              << "x\n";
  }

  {
    std::ofstream Json("BENCH_staticscreen.json");
    Json.precision(6);
    Json << std::fixed << "{\n"
         << "  \"bench\": \"staticscreen\",\n"
         << "  \"models\": " << Models.size() << ",\n"
         << "  \"modeled_accesses\": " << TotalModeled << ",\n"
         << "  \"analysis_seconds\": " << AnalysisSecs << ",\n"
         << "  \"models_per_sec\": "
         << (AnalysisSecs > 0 ? Models.size() / AnalysisSecs : 0) << ",\n"
         << "  \"batch_jobs\": " << Jobs.size() << ",\n"
         << "  \"unscreened_seconds\": " << UnscreenedSecs << ",\n"
         << "  \"screened_seconds\": " << ScreenedSecs << ",\n"
         << "  \"jobs_skipped\": " << Stats.StaticSkipped << ",\n"
         << "  \"speedup\": "
         << (ScreenedSecs > 0 ? UnscreenedSecs / ScreenedSecs : 0) << ",\n"
         << "  \"bytes_identical\": " << (Identical ? "true" : "false")
         << ",\n"
         << "  \"per_model\": [\n";
    for (size_t I = 0; I < Models.size(); ++I) {
      const ModelRow &Row = Models[I];
      Json << "    {\"model\": \"" << Row.Name
           << "\", \"modeled_accesses\": " << Row.ModeledAccesses
           << ", \"seconds\": " << Row.Seconds << ", \"conflict_free\": "
           << (Row.ConflictFree ? "true" : "false") << "}"
           << (I + 1 < Models.size() ? "," : "") << "\n";
    }
    Json << "  ]\n}\n";
  }

  if (!Identical) {
    std::cerr << "error: screened artifacts diverge from unscreened run\n";
    return 1;
  }
  return 0;
}
