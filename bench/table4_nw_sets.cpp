//===- bench/table4_nw_sets.cpp - Paper Table 4 reproduction --------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Reproduces paper Table 4: per-loop L1-miss contribution and number of
// cache sets utilized for Needleman-Wunsch, via CCProf's code-centric
// attribution. In the paper, the tile-copy loops (needle.cpp:128/189)
// dominate the misses, and two loops (138/199) utilize only a subset of
// the 64 sets.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/Report.h"
#include "support/Table.h"

#include <iostream>

using namespace ccprof;
using namespace ccprof::bench;

int main() {
  std::cout << "=== Table 4: distribution of cache-set usage per loop in "
               "Needleman-Wunsch ===\n\n";

  auto W = makeWorkloadByName("NW");
  if (!W) {
    std::cerr << "error: NW workload unavailable\n";
    return 1;
  }

  // Exact profile — the paper validates this table against simulation.
  ProfileResult Result = profileWorkloadExact(*W, WorkloadVariant::Original);
  std::cout << renderLoopTable(Result) << '\n';

  std::cout << "Classifier verdicts with RCD details:\n\n";
  TextTable Verdicts({"loop", "cf(RCD<8)", "mean RCD", "verdict"});
  for (const LoopConflictReport &Loop : Result.Loops)
    Verdicts.addRow({Loop.Location, fmt::percent(Loop.ContributionFactor),
                     fmt::fixed(Loop.MeanRcd, 1),
                     Loop.ConflictPredicted ? "CONFLICT" : "clean"});
  std::cout << Verdicts.render() << '\n';

  if (const LoopConflictReport *Hot = Result.hottest())
    std::cout << renderVictimSets(*Hot) << '\n';

  std::cout << "Paper shape check: the tile-copy loops "
               "(needle.cpp:128/138/189/199) dominate the misses and are "
               "flagged; init and traceback loops are minor.\n";
  return 0;
}
