//===- bench/table2_overhead.cpp - Paper Table 2 reproduction -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Reproduces paper Table 2: per case-study application, the target
// loop's share of L1 misses, the trace-driven-simulation overhead of
// analyzing the target loop, CCProf's whole-program overhead at the
// recommended mean period of 1212, and the number of active inner loops
// (the simulator would have to trace all of them for whole-program
// coverage). Overheads combine the measured plain runtime with the
// calibrated per-sample / per-traced-reference costs (see
// pmu/OverheadModel.h); the paper reports a median simulation overhead
// of 264x per loop vs a CCProf median of 1.37x whole-program.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "pmu/OverheadModel.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <iostream>

using namespace ccprof;
using namespace ccprof::bench;

int main() {
  std::cout << "=== Table 2: benchmarks and CCProf performance ===\n"
            << "(sampling: bursty, mean period 1212 — the paper's "
               "recommended setting)\n\n";

  OverheadConstants Constants = calibrateOverheadConstants();

  TextTable Table({"Application", "Target loop", "contribution",
                   "Simulation overhead (loop)", "CCProf overhead (overall)",
                   "# active loops"});

  std::vector<double> SimOverheads, CcprofOverheads;
  for (const auto &W : makeCaseStudySuite()) {
    double Plain = timeWorkload(*W, WorkloadVariant::Original);
    Trace T = traceWorkload(*W, WorkloadVariant::Original);
    BinaryImage Image = W->makeBinary();
    ProgramStructure S(Image);
    Profiler Exact;
    ProfileResult Result = Exact.profileExact(T, S);

    const LoopConflictReport *Hot = Result.byLocation(W->hotLoopLocation());
    if (!Hot)
      Hot = Result.hottest();

    // Loop-targeted simulation traces only the hot loop's references;
    // estimate its reference count from its share of L1 misses (the
    // paper's selective tracing does the same hot-loop isolation).
    uint64_t LoopRefs = static_cast<uint64_t>(
        static_cast<double>(Result.TraceRefs) *
        (Hot ? Hot->MissContribution : 1.0));
    double SimOverhead =
        simulationOverheadFactor(Plain, LoopRefs, Constants);

    uint64_t Samples = Result.L1Misses / 1212;
    double CcprofOverhead =
        profilingOverheadFactor(Plain, Samples, Constants);

    // Active loops: contexts that actually produced misses.
    size_t ActiveLoops = Result.Loops.size();

    SimOverheads.push_back(SimOverhead);
    CcprofOverheads.push_back(CcprofOverhead);

    Table.addRow({W->name(), Hot ? Hot->Location : "-",
                  Hot ? fmt::percent(Hot->MissContribution) : "-",
                  fmt::times(SimOverhead, 1), fmt::times(CcprofOverhead),
                  std::to_string(ActiveLoops)});
  }
  std::cout << Table.render() << '\n';

  std::cout << "median simulation overhead: "
            << fmt::times(median(SimOverheads), 1)
            << "   (paper: 264x for the target loops)\n"
            << "median CCProf overhead:     "
            << fmt::times(median(CcprofOverheads))
            << "   (paper: 1.37x whole-program)\n"
            << "shape check: simulation costs orders of magnitude more "
               "than sampling.\n";
  return 0;
}
