//===- bench/ingest_throughput.cpp - ccprofd ingest throughput ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Measures the profile-ingest service's sustained throughput on one
// box, two ways:
//
//   store   ServiceStore::put driven directly — the content-hash +
//           atomic-persist + rolling-merge core with no queue in the
//           way.
//   daemon  the full Ccprofd path: in-process submit -> bounded queue
//           -> worker threads -> store + regression monitor, i.e.
//           exactly what a socket upload pays after the read().
//
// Every ingested artifact is distinct (fresh content, so nothing
// dedups away) and every put updates the rolling aggregate, so the
// measured rate is the *worst-case* persisted-ingest rate. The gate is
// >= 1000 ingests/sec on the store path; results land in
// BENCH_ingest.json for CI to archive.
//
// While it is at it, the harness re-ingests the same artifact family
// in shuffled orders and at several worker counts and asserts the
// rolling aggregate file is byte-identical every time — the
// determinism property the merge canonicalization guarantees.
//
//===----------------------------------------------------------------------===//

#include "service/Ccprofd.h"
#include "service/ServiceStore.h"
#include "support/Table.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <numeric>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace ccprof;
namespace fs = std::filesystem;

namespace {

constexpr unsigned StoreIngests = 2000;
constexpr unsigned DaemonIngests = 1000;
constexpr double GateIngestsPerSec = 1000.0;

using Clock = std::chrono::steady_clock;

/// One synthetic profile run: merge-compatible with its siblings,
/// distinct content per repeat index.
ProfileArtifact makeRun(uint32_t Repeat) {
  ProfileArtifact A;
  A.Provenance.Job.WorkloadName = "IngestBench";
  A.Provenance.Job.Repeat = Repeat;
  A.Provenance.Job.Seed = 7000 + Repeat;
  A.Result.TraceRefs = 100000;
  A.Result.L1Misses = 20000;
  A.Result.Samples = 1000 + Repeat;
  A.Result.L1MissRatio = 0.2;
  A.Result.NumSets = 64;
  A.Result.RcdThreshold = 8;
  LoopConflictReport Loop;
  Loop.Location = "bench.cpp:7";
  Loop.Samples = 1000 + Repeat;
  Loop.MissContribution = 1.0;
  Loop.ContributionFactor = 0.1;
  Loop.Significant = true;
  Loop.PerSetMisses.assign(64, 1);
  A.Result.Loops.push_back(std::move(Loop));
  return A;
}

std::string serialize(const ProfileArtifact &A) {
  std::stringstream Stream;
  A.writeTo(Stream);
  return Stream.str();
}

struct Scratch {
  fs::path Path;
  explicit Scratch(const std::string &Tag)
      : Path(fs::temp_directory_path() /
             ("ccprof-ingest-bench-" + Tag + "-" +
              std::to_string(::getpid()))) {
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~Scratch() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
};

std::string aggregateBytes(const ServiceStore &Store) {
  std::vector<std::string> Keys = Store.aggregateKeys();
  if (Keys.size() != 1)
    return {};
  std::ifstream In(fs::path(Store.aggregatesDirectory()) /
                       (Keys[0] + ArtifactExtension),
                   std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

} // namespace

int main() {
  std::cout << "=== ccprofd ingest throughput ===\n"
            << "(every artifact distinct; every put persists the object "
               "AND the rolling aggregate)\n\n";

  // Pre-serialize the payloads: the wire bytes exist before the server
  // sees them, so serialization is client-side cost, not ingest cost.
  std::vector<ProfileArtifact> Runs;
  std::vector<std::string> Payloads;
  for (uint32_t I = 0; I < StoreIngests; ++I) {
    Runs.push_back(makeRun(I));
    Payloads.push_back(serialize(Runs.back()));
  }

  TextTable Table({"path", "ingests", "wall time (s)", "ingests/sec"});

  // --- Store path: put() back to back, no queue. ---
  double StoreRate = 0.0;
  {
    Scratch Dir("store");
    ServiceStore Store(Dir.Path.string());
    std::string Error;
    if (!Store.open(&Error)) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
    Clock::time_point Start = Clock::now();
    for (uint32_t I = 0; I < StoreIngests; ++I) {
      ServicePutResult Put = Store.put(Runs[I], Payloads[I]);
      if (!Put.Ok || !Put.Fresh) {
        std::cerr << "error: put " << I << " failed: " << Put.Error << "\n";
        return 1;
      }
    }
    double Secs = std::chrono::duration<double>(Clock::now() - Start).count();
    StoreRate = StoreIngests / Secs;
    Table.addRow({"store", std::to_string(StoreIngests),
                  fmt::fixed(Secs, 3), fmt::fixed(StoreRate, 1)});
  }

  // --- Daemon path: submit -> queue -> workers -> store + monitor. ---
  double DaemonRate = 0.0;
  {
    Scratch Dir("daemon");
    ServiceConfig Config;
    Config.StoreDir = (Dir.Path / "store").string();
    Config.Workers = 2;
    Config.QueueCapacity = 128;
    Ccprofd Daemon(Config);
    std::string Error;
    if (!Daemon.start(&Error)) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
    Clock::time_point Start = Clock::now();
    for (uint32_t I = 0; I < DaemonIngests; ++I) {
      IngestRequest Request;
      Request.Name = "IngestBench";
      Request.Client = "bench";
      Request.Bytes = Payloads[I];
      Request.Source = "bench";
      if (!Daemon.submit(std::move(Request))) {
        std::cerr << "error: submit " << I << " refused\n";
        return 1;
      }
    }
    while (Daemon.processed() < DaemonIngests)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    double Secs = std::chrono::duration<double>(Clock::now() - Start).count();
    Daemon.stop();
    if (Daemon.store().stats().Objects != DaemonIngests) {
      std::cerr << "error: daemon lost ingests ("
                << Daemon.store().stats().Objects << " of " << DaemonIngests
                << ")\n";
      return 1;
    }
    DaemonRate = DaemonIngests / Secs;
    Table.addRow({"daemon", std::to_string(DaemonIngests),
                  fmt::fixed(Secs, 3), fmt::fixed(DaemonRate, 1)});
  }

  std::cout << Table;

  // --- Aggregate determinism: shuffled orders x worker counts. ---
  std::cout << "\n=== Aggregate byte-identity across ingest orders ===\n";
  constexpr unsigned FamilySize = 64;
  std::string Reference;
  bool Deterministic = true;
  unsigned Trials = 0;
  for (unsigned WorkerCount : {1u, 4u}) {
    for (unsigned Shuffle = 0; Shuffle < 2; ++Shuffle, ++Trials) {
      std::vector<size_t> Order(FamilySize);
      std::iota(Order.begin(), Order.end(), 0);
      std::mt19937 Rng(Trials + 1);
      std::shuffle(Order.begin(), Order.end(), Rng);

      Scratch Dir("order-" + std::to_string(Trials));
      ServiceConfig Config;
      Config.StoreDir = Dir.Path.string();
      Config.Workers = WorkerCount;
      Ccprofd Daemon(Config);
      std::string Error;
      if (!Daemon.start(&Error)) {
        std::cerr << "error: " << Error << "\n";
        return 1;
      }
      for (size_t I : Order) {
        IngestRequest Request;
        Request.Name = "IngestBench";
        Request.Client = "bench";
        Request.Bytes = Payloads[I];
        Daemon.submit(std::move(Request));
      }
      while (Daemon.processed() < FamilySize)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      Daemon.stop();

      std::string Bytes = aggregateBytes(Daemon.store());
      if (Bytes.empty()) {
        std::cerr << "error: trial " << Trials << " produced no aggregate\n";
        return 1;
      }
      if (Reference.empty())
        Reference = Bytes;
      const bool Same = Bytes == Reference;
      Deterministic = Deterministic && Same;
      std::cout << "  workers=" << WorkerCount << " shuffle=" << Shuffle
                << ": " << (Same ? "identical" : "DIVERGED") << "\n";
    }
  }

  // --- Machine-readable result for CI. ---
  {
    std::ofstream Json("BENCH_ingest.json");
    Json << "{\"bench\":\"ingest_throughput\","
         << "\"store_ingests\":" << StoreIngests << ","
         << "\"store_ingests_per_sec\":" << StoreRate << ","
         << "\"daemon_ingests\":" << DaemonIngests << ","
         << "\"daemon_ingests_per_sec\":" << DaemonRate << ","
         << "\"gate_ingests_per_sec\":" << GateIngestsPerSec << ","
         << "\"aggregate_deterministic\":"
         << (Deterministic ? "true" : "false") << "}\n";
  }
  std::cout << "\nresults -> BENCH_ingest.json\n";

  if (!Deterministic) {
    std::cerr << "error: aggregate bytes diverged across ingest orders\n";
    return 1;
  }
  if (StoreRate < GateIngestsPerSec) {
    std::cerr << "error: store ingest rate " << StoreRate
              << "/sec is below the " << GateIngestsPerSec << "/sec gate\n";
    return 1;
  }
  std::cout << "gate: store path sustains >= " << GateIngestsPerSec
            << " ingests/sec: PASS\n";
  return 0;
}
