//===- bench/baseline_comparison.cpp - RCD vs static imbalance -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Reproduces the paper's Sec. 7.1 comparison with DProf-style tools:
// a static whole-run set-imbalance heuristic agrees with RCD on
// stationary patterns but is structurally blind to *migrating* victim
// sets — a loop that conflicts on set A for one phase, set B for the
// next, and so on (the locality signature of paper Fig. 4) shows a
// perfectly balanced whole-run histogram. RCD measures distances, so
// every phase's short re-conflicts are visible regardless of which set
// hosts them.
//
// Four synthetic patterns with known ground truth plus the real case
// studies, classified by both approaches.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "cfg/SyntheticCodeGen.h"
#include "core/SetImbalanceBaseline.h"
#include "support/Table.h"

#include <iostream>

using namespace ccprof;
using namespace ccprof::bench;

namespace {

/// Builds a one-loop binary so the synthetic traces attribute cleanly.
BinaryImage syntheticImage(const char *File) {
  LoopSpec Loop;
  Loop.HeaderLine = 10;
  Loop.EndLine = 13;
  Loop.AccessLines = {11};
  FunctionSpec F;
  F.Name = "kernel";
  F.StartLine = 5;
  F.EndLine = 20;
  F.Loops = {Loop};
  return lowerToBinary(File, {F});
}

/// Static victim: one set hammered for the whole run.
Trace staticVictimTrace() {
  Trace T;
  SiteId S = T.site("static.cpp", 11, "kernel");
  for (int Round = 0; Round < 400; ++Round)
    for (uint64_t Row = 0; Row < 16; ++Row)
      T.recordLoad(S, 0x1000000 + Row * 4096, 4); // all set 0
  return T;
}

/// Migrating victim: each phase hammers one set, the victim rotates
/// over all 64 sets — per-phase conflicts, balanced whole-run
/// histogram.
Trace migratingVictimTrace() {
  Trace T;
  SiteId S = T.site("migrate.cpp", 11, "kernel");
  for (uint64_t Phase = 0; Phase < 64; ++Phase) {
    uint64_t Base = 0x1000000 + Phase * 64; // set == Phase
    for (int Round = 0; Round < 8; ++Round)
      for (uint64_t Row = 0; Row < 16; ++Row)
        T.recordLoad(S, Base + Row * 4096, 4);
  }
  return T;
}

/// Clean streaming: round-robin over every set, no reuse pressure.
Trace streamingTrace() {
  Trace T;
  SiteId S = T.site("stream.cpp", 11, "kernel");
  for (uint64_t Line = 0; Line < 8192; ++Line)
    T.recordLoad(S, 0x1000000 + Line * 64, 4);
  return T;
}

/// Skewed-but-harmless: thousands of distinct lines concentrated on
/// eight sets, each touched exactly once — pure cold misses, nothing a
/// layout change could recover, yet the per-set miss histogram is
/// maximally skewed.
Trace skewedColdTrace() {
  Trace T;
  SiteId S = T.site("skewed.cpp", 11, "kernel");
  // Many distinct lines, each touched once, concentrated on 8 sets:
  // cold misses only — no re-conflict at all.
  for (uint64_t I = 0; I < 4096; ++I) {
    uint64_t Set = I % 8;
    uint64_t Row = I / 8;
    T.recordLoad(S, 0x1000000 + Row * 4096 + Set * 64, 4);
  }
  return T;
}

struct Verdicts {
  bool Rcd;
  double Cf;
  bool Baseline;
  double TopShare;
};

Verdicts classifyTrace(const Trace &T, const BinaryImage &Image) {
  ProgramStructure S(Image);
  Profiler P;
  ProfileResult Result = P.profileExact(T, S);
  const LoopConflictReport *Hot = Result.hottest();
  Verdicts V{};
  if (!Hot)
    return V;
  V.Rcd = Hot->ConflictPredicted;
  V.Cf = Hot->ContributionFactor;
  SetImbalanceBaseline Baseline;
  ImbalanceVerdict B = Baseline.classify(Hot->PerSetMisses);
  V.Baseline = B.Conflict;
  V.TopShare = B.TopQuarterShare;
  return V;
}

const char *mark(bool Predicted, bool Truth) {
  if (Predicted == Truth)
    return Predicted ? "CONFLICT (correct)" : "clean (correct)";
  return Predicted ? "CONFLICT (FALSE POSITIVE)" : "clean (MISSED)";
}

} // namespace

int main() {
  std::cout << "=== Baseline comparison: RCD vs static set-imbalance "
               "(DProf-style) ===\n\n";

  struct Case {
    const char *Name;
    Trace T;
    BinaryImage Image;
    bool Truth;
  };
  std::vector<Case> Cases;
  Cases.push_back({"static victim (one hot set)", staticVictimTrace(),
                   syntheticImage("static.cpp"), true});
  Cases.push_back({"migrating victim (Fig. 4 pattern)",
                   migratingVictimTrace(), syntheticImage("migrate.cpp"),
                   true});
  Cases.push_back({"balanced streaming", streamingTrace(),
                   syntheticImage("stream.cpp"), false});
  Cases.push_back({"skewed cold-only footprint", skewedColdTrace(),
                   syntheticImage("skewed.cpp"), false});

  TextTable Table({"pattern", "truth", "RCD verdict (cf)",
                   "baseline verdict (top-quarter share)"});
  for (Case &C : Cases) {
    Verdicts V = classifyTrace(C.T, C.Image);
    Table.addRow({C.Name, C.Truth ? "conflict" : "clean",
                  std::string(mark(V.Rcd, C.Truth)) + "  (" +
                      fmt::percent(V.Cf) + ")",
                  std::string(mark(V.Baseline, C.Truth)) + "  (" +
                      fmt::percent(V.TopShare) + ")"});
  }
  std::cout << Table.render() << '\n';

  // Real workloads. Every case study's victim sets drift over the run
  // (NW's copy walk creeps one line every 16 rows, ADI's hot column
  // moves with the outer index, ...), so their whole-run histograms
  // flatten out and the static heuristic misses all of them.
  std::cout << "case studies (drifting victims):\n\n";
  TextTable Real({"application", "RCD", "baseline"});
  for (const auto &W : makeCaseStudySuite()) {
    Trace T = traceWorkload(*W, WorkloadVariant::Original);
    BinaryImage Image = W->makeBinary();
    Verdicts V = classifyTrace(T, Image);
    Real.addRow({W->name(), V.Rcd ? "CONFLICT" : "clean",
                 V.Baseline ? "CONFLICT" : "clean"});
  }
  std::cout << Real.render() << '\n';

  std::cout
      << "The static histogram is blind to migrating victims (their "
         "whole-run distribution\nis uniform) — including every real "
         "case study — and cries wolf on a skewed-but-cold\nfootprint. "
         "RCD classifies everything correctly: the paper's Sec. 7.1 "
         "argument against\nheuristics that assume a workload uniform "
         "over time, made quantitative.\n";
  return 0;
}
