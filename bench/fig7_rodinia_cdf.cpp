//===- bench/fig7_rodinia_cdf.cpp - Paper Fig. 7 reproduction -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Reproduces paper Fig. 7: the cumulative distribution of sampled RCDs
// for the hot loop of each of the 18 Rodinia applications. The paper's
// observation: Needleman-Wunsch concentrates ~88% of its L1 misses below
// RCD 8, while every other application keeps short-RCD mass at 10-20%.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Table.h"

#include <iostream>

using namespace ccprof;
using namespace ccprof::bench;

int main() {
  std::cout << "=== Figure 7: CDF of sampled RCD, Rodinia suite ===\n"
            << "(bursty PEBS sampling, mean period 171; hot loop per "
               "application)\n\n";

  const std::vector<uint64_t> CdfPoints = {1, 2, 4, 8, 16, 32, 64, 128};
  std::vector<std::string> Header = {"application", "samples"};
  for (uint64_t Point : CdfPoints)
    Header.push_back("<=" + std::to_string(Point));
  TextTable Table(Header);

  ProfileOptions Options;
  Options.Sampling.Kind = SamplingKind::Bursty;
  Options.Sampling.MeanPeriod = 171;

  for (const auto &W : makeRodiniaSuite()) {
    ProfileResult Result =
        profileWorkload(*W, WorkloadVariant::Original, Options);
    const LoopConflictReport *Hot = Result.hottest();
    std::vector<std::string> Row = {W->name()};
    if (!Hot || Hot->Rcd.empty()) {
      // Too few samples for any set to repeat: no RCD observations.
      Row.push_back(Hot ? fmt::grouped(Hot->Samples) : "0");
      for (size_t I = 0; I < CdfPoints.size(); ++I)
        Row.push_back("-");
    } else {
      Row.push_back(fmt::grouped(Hot->Samples));
      for (uint64_t Point : CdfPoints)
        Row.push_back(fmt::percent(Hot->Rcd.cdfAt(Point), 0));
    }
    Table.addRow(Row);
  }
  std::cout << Table.render() << '\n';

  std::cout << "Paper shape check: NW is the only application with heavy "
               "mass at RCD < 8\n(~88% in the paper); the conflict-free "
               "kernels keep it at 10-20%.\n";
  return 0;
}
