//===- bench/ablation_design.cpp - Design-choice ablations -----------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Ablates the three tunables behind CCProf's headline behaviour:
//
//  1. the short-RCD threshold T (the paper uses T = 8 on a 64-set L1);
//  2. the burst length of the sampling schedule (what makes short RCDs
//     observable at all under sparse sampling);
//  3. the simulated replacement policy (the paper assumes LRU; real L1s
//     are pseudo-LRU — does the verdict survive the substitution?).
//
// Each ablation measures the separation between conflicting and clean
// loops: the minimum cf over the conflicting group minus the maximum cf
// over the clean group (positive = perfectly separable).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Table.h"

#include <algorithm>
#include <iostream>
#include <memory>

using namespace ccprof;
using namespace ccprof::bench;

namespace {

struct PreparedLoop {
  std::string Name;
  Trace T;
  std::unique_ptr<BinaryImage> Image;
  std::unique_ptr<ProgramStructure> S;
  std::string HotLocation;
  bool Conflicting;
};

std::vector<PreparedLoop> prepareLoops() {
  struct Spec {
    const char *Name;
    WorkloadVariant Variant;
    bool Conflicting;
  };
  const Spec Specs[] = {
      {"NW", WorkloadVariant::Original, true},
      {"ADI", WorkloadVariant::Original, true},
      {"Tiny-DNN", WorkloadVariant::Original, true},
      {"HimenoBMT", WorkloadVariant::Original, true},
      {"ADI", WorkloadVariant::Optimized, false},
      {"cfd", WorkloadVariant::Original, false},
      {"hotspot", WorkloadVariant::Original, false},
      {"nn", WorkloadVariant::Original, false},
  };
  std::vector<PreparedLoop> Loops;
  for (const Spec &S : Specs) {
    std::unique_ptr<Workload> W = makeWorkloadByName(S.Name);
    PreparedLoop Loop;
    Loop.Name = std::string(S.Name) +
                (S.Variant == WorkloadVariant::Optimized ? " (padded)" : "");
    W->run(S.Variant, &Loop.T);
    Loop.Image = std::make_unique<BinaryImage>(W->makeBinary());
    Loop.S = std::make_unique<ProgramStructure>(*Loop.Image);
    Loop.HotLocation = W->hotLoopLocation();
    Loop.Conflicting = S.Conflicting;
    Loops.push_back(std::move(Loop));
  }
  return Loops;
}

double hotCf(const PreparedLoop &Loop, const ProfileOptions &Options) {
  Profiler P(Options);
  ProfileResult Result = P.profile(Loop.T, *Loop.S);
  const LoopConflictReport *Hot = Result.byLocation(Loop.HotLocation);
  if (!Hot)
    Hot = Result.hottest();
  return Hot ? Hot->ContributionFactor : 0.0;
}

/// min(conflicting cf) - max(clean cf); positive = separable.
double separation(const std::vector<PreparedLoop> &Loops,
                  const ProfileOptions &Options) {
  double MinConflict = 1.0, MaxClean = 0.0;
  for (const PreparedLoop &Loop : Loops) {
    double Cf = hotCf(Loop, Options);
    if (Loop.Conflicting)
      MinConflict = std::min(MinConflict, Cf);
    else
      MaxClean = std::max(MaxClean, Cf);
  }
  return MinConflict - MaxClean;
}

} // namespace

int main() {
  std::cout << "=== Ablation study: RCD threshold, burst length, "
               "replacement policy ===\n\n";
  std::vector<PreparedLoop> Loops = prepareLoops();
  std::cout << "loop set: 4 conflicting + 4 clean; metric = min(conflict "
               "cf) - max(clean cf)\n(positive means one threshold "
               "separates the classes perfectly)\n\n";

  // --- 1. RCD threshold ---------------------------------------------------
  std::cout << "--- short-RCD threshold T (period 171, burst 32) ---\n";
  TextTable ThresholdTable({"T", "separation", "note"});
  for (uint64_t T : {2ull, 4ull, 8ull, 16ull, 32ull, 64ull}) {
    ProfileOptions Options;
    Options.Sampling.Kind = SamplingKind::Bursty;
    Options.Sampling.MeanPeriod = 171;
    Options.RcdThreshold = T;
    ThresholdTable.addRow({std::to_string(T),
                           fmt::fixed(separation(Loops, Options), 3),
                           T == 8 ? "paper's choice" : ""});
  }
  std::cout << ThresholdTable.render() << '\n';

  // --- 2. Burst length ------------------------------------------------
  std::cout << "--- burst length (mean period 171, T = 8) ---\n";
  TextTable BurstTable({"burst", "separation", "note"});
  for (uint64_t Burst : {2ull, 4ull, 8ull, 16ull, 32ull, 64ull, 128ull}) {
    ProfileOptions Options;
    Options.Sampling.Kind = SamplingKind::Bursty;
    Options.Sampling.MeanPeriod = 171;
    Options.Sampling.BurstLen = Burst;
    std::string Note;
    if (Burst == 32)
      Note = "default";
    else if (Burst == 128)
      Note = "burst exceeds the set count";
    BurstTable.addRow({std::to_string(Burst),
                       fmt::fixed(separation(Loops, Options), 3), Note});
  }
  std::cout << BurstTable.render() << '\n';
  std::cout << "A burst must be long enough to see a victim set twice "
               "(short bursts blunt cf on\nconflicting loops) but shorter "
               "than one balanced rotation over all 64 sets, or\nclean "
               "loops start producing sub-64 distances too.\n\n";

  // --- 3. Replacement policy ------------------------------------------
  std::cout << "--- L1 replacement policy (exact profiles, T = 8) ---\n";
  TextTable PolicyTable({"policy", "separation", "note"});
  const struct {
    ReplacementKind Kind;
    const char *Name;
    const char *Note;
  } Policies[] = {
      {ReplacementKind::Lru, "LRU", "the paper's model"},
      {ReplacementKind::TreePlru, "tree-PLRU", "real Intel L1s"},
      {ReplacementKind::Fifo, "FIFO", ""},
      {ReplacementKind::Random, "random", ""},
  };
  for (const auto &Policy : Policies) {
    ProfileOptions Options;
    Options.Sampling.Kind = SamplingKind::Fixed;
    Options.Sampling.MeanPeriod = 1; // exact
    Options.MissOptions.Policy = Policy.Kind;
    PolicyTable.addRow({Policy.Name,
                        fmt::fixed(separation(Loops, Options), 3),
                        Policy.Note});
  }
  std::cout << PolicyTable.render() << '\n';
  std::cout << "The verdicts are robust to the replacement policy: "
               "conflicts are a property of\nthe set mapping, not of the "
               "eviction order within a set.\n";
  return 0;
}
