//===- bench/table3_speedup.cpp - Paper Table 3 reproduction --------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Reproduces paper Table 3: the speedup and the per-level cache-miss
// reduction of each case study after the CCProf-guided fix. Speedups are
// *measured wall-clock* on this host (sequential; the container has one
// core — the paper's 28/8-thread runs are out of reach, but its
// sequential ADI rows show the effect survives single-threaded).
// Miss-reduction columns replay the recorded traces through simulated
// Broadwell and Skylake per-core hierarchies.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Table.h"

#include <iostream>

using namespace ccprof;
using namespace ccprof::bench;

int main() {
  std::cout << "=== Table 3: speedup and cache-miss reduction after "
               "optimization ===\n\n";

  const MachineConfig Machines[] = {broadwellConfig(), skylakeConfig()};

  TextTable Table({"Application", "Speedup (measured)",
                   "BDW L1", "BDW L2", "BDW LLC",
                   "SKL L1", "SKL L2", "SKL LLC"});

  for (const auto &W : makeCaseStudySuite()) {
    double Before = timeWorkload(*W, WorkloadVariant::Original, 5);
    double After = timeWorkload(*W, WorkloadVariant::Optimized, 5);
    double Speedup = Before / After;

    Trace OrigTrace = traceWorkload(*W, WorkloadVariant::Original);
    Trace OptTrace = traceWorkload(*W, WorkloadVariant::Optimized);

    std::vector<std::string> Row = {W->name(), fmt::times(Speedup)};
    for (const MachineConfig &Machine : Machines) {
      HierarchyMisses MissesBefore = simulateHierarchy(OrigTrace, Machine);
      HierarchyMisses MissesAfter = simulateHierarchy(OptTrace, Machine);
      Row.push_back(fmt::fixed(
                        reductionPercent(MissesBefore.L1, MissesAfter.L1), 1) +
                    "%");
      Row.push_back(fmt::fixed(
                        reductionPercent(MissesBefore.L2, MissesAfter.L2), 1) +
                    "%");
      Row.push_back(
          fmt::fixed(reductionPercent(MissesBefore.Llc, MissesAfter.Llc), 1) +
          "%");
    }
    Table.addRow(Row);
  }
  std::cout << Table.render() << '\n';

  std::cout
      << "Paper reference (Broadwell / Skylake speedups): NW 3.03x/1.55x, "
         "MKL-FFT 1.13x/1.03x, ADI 1.26x/1.70x (sequential),\n"
         "Tiny-DNN 1.09x/1.24x, Kripke 94.6x/11.1x (loop only), "
         "HimenoBMT 1.12x/1.14x.\n"
         "Shape check: every fix speeds its application up, Kripke's "
         "loop-order fix is the largest win, and L1/L2 misses drop.\n";
  return 0;
}
