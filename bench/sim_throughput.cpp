//===- bench/sim_throughput.cpp - Simulation engine throughput ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Tracks the two perf levers of the single-pass simulation engine:
//
//  1. refs/sec of the SoA Cache hot path against the preserved scalar
//     ReferenceCache on the same mixed strided/random reference stream
//     (identical behaviour is enforced separately by
//     tests/CacheSoaExactnessTest.cpp);
//
//  2. jobs/sec of a sampling-period-sweep batch — the paper-style
//     evaluation matrix — with the shared-trace engine + miss-stream
//     cache ON (runJobsShared) vs OFF (naive runJobs), verifying along
//     the way that both paths produce byte-identical artifacts.
//
// Emits machine-readable BENCH_sim_throughput.json in the working
// directory so the perf trajectory is comparable across PRs; exits
// nonzero if the byte-identity check fails. `--smoke` shrinks the
// workload for CI.
//
//===----------------------------------------------------------------------===//

#include "pipeline/JobRunner.h"
#include "sim/MachineConfig.h"
#include "sim/ReferenceCache.h"
#include "support/Rng.h"
#include "support/Table.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

using namespace ccprof;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// Mixed reference stream: strided array sweeps (the workloads' common
/// pattern) interleaved with random pointers, plus stores.
std::vector<std::pair<uint64_t, bool>> makeStream(size_t NumRefs) {
  std::vector<std::pair<uint64_t, bool>> Refs;
  Refs.reserve(NumRefs);
  Xoshiro256 Rng(0xbe9c'47a1);
  uint64_t Stride = 0;
  for (size_t I = 0; I < NumRefs; ++I) {
    uint64_t Addr;
    if (I % 4 != 0) {
      Stride += 24; // walks sets, revisits lines
      Addr = Stride % (1 << 20);
    } else {
      Addr = Rng.nextBounded(1 << 20);
    }
    Refs.emplace_back(Addr, Rng.nextBounded(8) < 3);
  }
  return Refs;
}

template <typename CacheT>
double refsPerSec(CacheT &C,
                  const std::vector<std::pair<uint64_t, bool>> &Refs,
                  uint64_t &HitSink) {
  Clock::time_point Start = Clock::now();
  for (const auto &[Addr, IsWrite] : Refs)
    HitSink += C.access(Addr, IsWrite).Hit;
  double Secs = secondsSince(Start);
  return static_cast<double>(Refs.size()) / Secs;
}

std::string serializeAll(const std::vector<JobOutcome> &Outcomes) {
  std::stringstream Stream;
  for (const JobOutcome &Outcome : Outcomes)
    if (Outcome.ok())
      Outcome.Artifact.writeTo(Stream);
  return Stream.str();
}

std::string fmtRate(double PerSec) {
  std::ostringstream Out;
  Out.precision(2);
  Out << std::fixed;
  if (PerSec >= 1e6)
    Out << PerSec / 1e6 << "M";
  else if (PerSec >= 1e3)
    Out << PerSec / 1e3 << "k";
  else
    Out << PerSec;
  return Out.str();
}

std::string fmtX(double Value) {
  std::ostringstream Out;
  Out.precision(2);
  Out << std::fixed << Value << "x";
  return Out.str();
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;

  std::cout << "=== Simulation engine throughput"
            << (Smoke ? " (smoke)" : "") << " ===\n\n";

  // --- 1. SoA hot path vs scalar reference model ------------------------
  const size_t NumRefs = Smoke ? 400'000 : 4'000'000;
  std::vector<std::pair<uint64_t, bool>> Refs = makeStream(NumRefs);
  const CacheGeometry L1 = paperL1Geometry();

  uint64_t HitSink = 0;
  // Warm-up pass each, then the measured pass.
  double ScalarRate, SoaRate;
  {
    ReferenceCache Warm(L1), Timed(L1);
    refsPerSec(Warm, Refs, HitSink);
    ScalarRate = refsPerSec(Timed, Refs, HitSink);
  }
  {
    Cache Warm(L1), Timed(L1);
    refsPerSec(Warm, Refs, HitSink);
    SoaRate = refsPerSec(Timed, Refs, HitSink);
  }
  const double SoaSpeedup = SoaRate / ScalarRate;

  TextTable CacheTable({"model", "refs/sec", "speedup"});
  CacheTable.addRow({"scalar (ReferenceCache)", fmtRate(ScalarRate), "1.00x"});
  CacheTable.addRow({"SoA (Cache)", fmtRate(SoaRate), fmtX(SoaSpeedup)});
  std::cout << CacheTable.render() << "(hit sink " << HitSink % 10 << ", "
            << L1.describe() << ", LRU)\n\n";

  // --- 2. Shared-trace batch vs naive per-job simulation ----------------
  // The acceptance scenario: one workload swept over >= 4 sampling
  // periods — identical trace and miss stream per job, different
  // samplers. Paper Sec. 5.3 sweeps exactly this axis.
  BatchMatrix Matrix;
  Matrix.Workloads = {"Symmetrization"};
  Matrix.Periods = Smoke ? std::vector<uint64_t>{171, 606, 1212, 2424}
                         : std::vector<uint64_t>{171, 303, 606, 1212, 2424,
                                                 4848};
  std::vector<JobSpec> Jobs = expandMatrix(Matrix);

  runJobs(Jobs, 1); // warm-up: page faults, lazy init

  Clock::time_point NaiveStart = Clock::now();
  std::vector<JobOutcome> Naive = runJobs(Jobs, 1);
  const double NaiveSecs = secondsSince(NaiveStart);

  SharedBatchStats Stats;
  Clock::time_point SharedStart = Clock::now();
  std::vector<JobOutcome> Shared =
      runJobsShared(Jobs, 1, 0, nullptr, nullptr, &Stats);
  const double SharedSecs = secondsSince(SharedStart);

  size_t Failed = 0;
  for (const JobOutcome &Outcome : Naive)
    Failed += !Outcome.ok();
  for (const JobOutcome &Outcome : Shared)
    Failed += !Outcome.ok();
  if (Failed != 0) {
    std::cerr << "error: " << Failed << " job(s) failed\n";
    return 1;
  }
  const bool Identical = serializeAll(Naive) == serializeAll(Shared);

  const double NaiveRate = static_cast<double>(Jobs.size()) / NaiveSecs;
  const double SharedRate = static_cast<double>(Jobs.size()) / SharedSecs;
  const double BatchSpeedup = SharedRate / NaiveRate;

  TextTable BatchTable(
      {"engine", "jobs", "wall (s)", "jobs/sec", "speedup", "bytes =="});
  {
    std::ostringstream NaiveWall, SharedWall;
    NaiveWall.precision(3);
    NaiveWall << std::fixed << NaiveSecs;
    SharedWall.precision(3);
    SharedWall << std::fixed << SharedSecs;
    BatchTable.addRow({"naive (miss-stream cache off)",
                       std::to_string(Jobs.size()), NaiveWall.str(),
                       fmtRate(NaiveRate), "1.00x", "-"});
    BatchTable.addRow({"shared-trace (cache on)", std::to_string(Jobs.size()),
                       SharedWall.str(), fmtRate(SharedRate),
                       fmtX(BatchSpeedup), Identical ? "yes" : "NO"});
  }
  std::cout << BatchTable.render() << "(" << Jobs.size()
            << "-period sweep; stream cache: " << Stats.Streams.Hits
            << " hit(s), " << Stats.Streams.Misses << " simulation(s))\n";

  // --- Machine-readable trajectory --------------------------------------
  {
    std::ofstream Json("BENCH_sim_throughput.json");
    Json.precision(6);
    Json << std::fixed << "{\n"
         << "  \"bench\": \"sim_throughput\",\n"
         << "  \"smoke\": " << (Smoke ? "true" : "false") << ",\n"
         << "  \"cache_refs\": " << NumRefs << ",\n"
         << "  \"scalar_refs_per_sec\": " << ScalarRate << ",\n"
         << "  \"soa_refs_per_sec\": " << SoaRate << ",\n"
         << "  \"soa_speedup\": " << SoaSpeedup << ",\n"
         << "  \"batch_jobs\": " << Jobs.size() << ",\n"
         << "  \"naive_jobs_per_sec\": " << NaiveRate << ",\n"
         << "  \"shared_jobs_per_sec\": " << SharedRate << ",\n"
         << "  \"shared_speedup\": " << BatchSpeedup << ",\n"
         << "  \"stream_cache_hits\": " << Stats.Streams.Hits << ",\n"
         << "  \"stream_cache_simulations\": " << Stats.Streams.Misses
         << ",\n"
         << "  \"byte_identical\": " << (Identical ? "true" : "false")
         << "\n}\n";
  }
  std::cout << "\nwrote BENCH_sim_throughput.json\n";

  if (!Identical) {
    std::cerr << "error: shared-trace artifacts differ from the naive "
                 "path's bytes\n";
    return 1;
  }
  return 0;
}
