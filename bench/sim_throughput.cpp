//===- bench/sim_throughput.cpp - Simulation engine throughput ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Tracks the three perf levers of the simulation engine:
//
//  1. simulated-accesses/sec of the SoA Cache hot path against the
//     preserved scalar ReferenceCache, reported per cache
//     configuration (geometry x policy) on the same mixed
//     strided/random reference stream (identical behaviour is enforced
//     separately by tests/CacheSoaExactnessTest.cpp);
//
//  2. jobs/sec of a sampling-period-sweep batch — the paper-style
//     evaluation matrix — with the shared-trace engine + miss-stream
//     cache ON (runJobsShared) vs OFF (naive runJobs), verifying along
//     the way that both paths produce byte-identical artifacts;
//
//  3. a shard-count sweep of the set-sharded parallel collector
//     (collectL1MissStreamParallel) over a large synthetic trace,
//     verifying at every shard count that the merged miss stream is
//     element-identical to the sequential collector's.
//
// Emits machine-readable BENCH_sim_throughput.json and
// BENCH_simshard.json in the working directory so the perf trajectory
// is comparable across PRs; exits nonzero if any identity check fails.
// `--smoke` shrinks the workloads for CI; `--json` suppresses the
// human-readable tables (the JSON files are always written).
//
//===----------------------------------------------------------------------===//

#include "pipeline/JobRunner.h"
#include "pmu/PebsEvent.h"
#include "sim/MachineConfig.h"
#include "sim/ReferenceCache.h"
#include "support/Rng.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

using namespace ccprof;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// Mixed reference stream: strided array sweeps (the workloads' common
/// pattern) interleaved with random pointers, plus stores.
std::vector<std::pair<uint64_t, bool>> makeStream(size_t NumRefs) {
  std::vector<std::pair<uint64_t, bool>> Refs;
  Refs.reserve(NumRefs);
  Xoshiro256 Rng(0xbe9c'47a1);
  uint64_t Stride = 0;
  for (size_t I = 0; I < NumRefs; ++I) {
    uint64_t Addr;
    if (I % 4 != 0) {
      Stride += 24; // walks sets, revisits lines
      Addr = Stride % (1 << 20);
    } else {
      Addr = Rng.nextBounded(1 << 20);
    }
    Refs.emplace_back(Addr, Rng.nextBounded(8) < 3);
  }
  return Refs;
}

/// The same stream as a Trace, for the sharded trace-facing collector.
Trace makeTrace(size_t NumRefs) {
  Trace T;
  T.reserve(NumRefs);
  for (const auto &[Addr, IsWrite] : makeStream(NumRefs)) {
    if (IsWrite)
      T.recordStore(0, Addr, 8);
    else
      T.recordLoad(0, Addr, 8);
  }
  return T;
}

template <typename CacheT>
double refsPerSec(CacheT &C,
                  const std::vector<std::pair<uint64_t, bool>> &Refs,
                  uint64_t &HitSink) {
  Clock::time_point Start = Clock::now();
  for (const auto &[Addr, IsWrite] : Refs)
    HitSink += C.access(Addr, IsWrite).Hit;
  double Secs = secondsSince(Start);
  return static_cast<double>(Refs.size()) / Secs;
}

std::string serializeAll(const std::vector<JobOutcome> &Outcomes) {
  std::stringstream Stream;
  for (const JobOutcome &Outcome : Outcomes)
    if (Outcome.ok())
      Outcome.Artifact.writeTo(Stream);
  return Stream.str();
}

std::string fmtRate(double PerSec) {
  std::ostringstream Out;
  Out.precision(2);
  Out << std::fixed;
  if (PerSec >= 1e6)
    Out << PerSec / 1e6 << "M";
  else if (PerSec >= 1e3)
    Out << PerSec / 1e3 << "k";
  else
    Out << PerSec;
  return Out.str();
}

std::string fmtX(double Value) {
  std::ostringstream Out;
  Out.precision(2);
  Out << std::fixed << Value << "x";
  return Out.str();
}

const char *policyName(ReplacementKind Policy) {
  switch (Policy) {
  case ReplacementKind::Lru:
    return "LRU";
  case ReplacementKind::Fifo:
    return "FIFO";
  case ReplacementKind::TreePlru:
    return "TreePLRU";
  case ReplacementKind::Random:
    return "Random";
  }
  return "?";
}

/// One geometry x policy row of the per-config hot-path comparison.
struct ConfigRow {
  std::string Name;
  CacheGeometry Geometry;
  ReplacementKind Policy;
  double ScalarRate = 0.0;
  double SoaRate = 0.0;
};

/// One shard count of the sharded-collector sweep.
struct ShardRow {
  unsigned Shards = 0;
  unsigned Threads = 0;
  double AccessesPerSec = 0.0;
  double Speedup = 1.0;
  bool Identical = true;
};

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  bool JsonOnly = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strcmp(Argv[I], "--json") == 0)
      JsonOnly = true;
  }

  if (!JsonOnly)
    std::cout << "=== Simulation engine throughput"
              << (Smoke ? " (smoke)" : "") << " ===\n\n";

  // --- 1. SoA hot path vs scalar model, per cache configuration --------
  const size_t NumRefs = Smoke ? 400'000 : 4'000'000;
  std::vector<std::pair<uint64_t, bool>> Refs = makeStream(NumRefs);

  std::vector<ConfigRow> Configs = {
      {"paper L1", paperL1Geometry(), ReplacementKind::Lru},
      {"paper L1", paperL1Geometry(), ReplacementKind::Fifo},
      {"256K/8w L2", CacheGeometry(256 * 1024, 64, 8), ReplacementKind::Lru},
  };

  uint64_t HitSink = 0;
  for (ConfigRow &Row : Configs) {
    {
      ReferenceCache Warm(Row.Geometry, Row.Policy),
          Timed(Row.Geometry, Row.Policy);
      refsPerSec(Warm, Refs, HitSink); // warm-up: page faults, lazy init
      Row.ScalarRate = refsPerSec(Timed, Refs, HitSink);
    }
    {
      Cache Warm(Row.Geometry, Row.Policy), Timed(Row.Geometry, Row.Policy);
      refsPerSec(Warm, Refs, HitSink);
      Row.SoaRate = refsPerSec(Timed, Refs, HitSink);
    }
  }

  if (!JsonOnly) {
    TextTable CacheTable({"config", "policy", "scalar refs/sec",
                          "SoA refs/sec", "SoA speedup"});
    for (const ConfigRow &Row : Configs)
      CacheTable.addRow({Row.Name, policyName(Row.Policy),
                         fmtRate(Row.ScalarRate), fmtRate(Row.SoaRate),
                         fmtX(Row.SoaRate / Row.ScalarRate)});
    std::cout << CacheTable.render() << "(hit sink " << HitSink % 10 << ", "
              << NumRefs << " refs per measurement)\n\n";
  }
  const double ScalarRate = Configs.front().ScalarRate;
  const double SoaRate = Configs.front().SoaRate;
  const double SoaSpeedup = SoaRate / ScalarRate;

  // --- 2. Shared-trace batch vs naive per-job simulation ----------------
  // The acceptance scenario: one workload swept over >= 4 sampling
  // periods — identical trace and miss stream per job, different
  // samplers. Paper Sec. 5.3 sweeps exactly this axis.
  BatchMatrix Matrix;
  Matrix.Workloads = {"Symmetrization"};
  Matrix.Periods = Smoke ? std::vector<uint64_t>{171, 606, 1212, 2424}
                         : std::vector<uint64_t>{171, 303, 606, 1212, 2424,
                                                 4848};
  std::vector<JobSpec> Jobs = expandMatrix(Matrix);

  runJobs(Jobs, 1); // warm-up: page faults, lazy init

  Clock::time_point NaiveStart = Clock::now();
  std::vector<JobOutcome> Naive = runJobs(Jobs, 1);
  const double NaiveSecs = secondsSince(NaiveStart);

  SharedBatchStats Stats;
  Clock::time_point SharedStart = Clock::now();
  std::vector<JobOutcome> Shared =
      runJobsShared(Jobs, 1, 0, nullptr, nullptr, &Stats);
  const double SharedSecs = secondsSince(SharedStart);

  size_t Failed = 0;
  for (const JobOutcome &Outcome : Naive)
    Failed += !Outcome.ok();
  for (const JobOutcome &Outcome : Shared)
    Failed += !Outcome.ok();
  if (Failed != 0) {
    std::cerr << "error: " << Failed << " job(s) failed\n";
    return 1;
  }
  const bool Identical = serializeAll(Naive) == serializeAll(Shared);

  const double NaiveRate = static_cast<double>(Jobs.size()) / NaiveSecs;
  const double SharedRate = static_cast<double>(Jobs.size()) / SharedSecs;
  const double BatchSpeedup = SharedRate / NaiveRate;

  if (!JsonOnly) {
    TextTable BatchTable(
        {"engine", "jobs", "wall (s)", "jobs/sec", "speedup", "bytes =="});
    std::ostringstream NaiveWall, SharedWall;
    NaiveWall.precision(3);
    NaiveWall << std::fixed << NaiveSecs;
    SharedWall.precision(3);
    SharedWall << std::fixed << SharedSecs;
    BatchTable.addRow({"naive (miss-stream cache off)",
                       std::to_string(Jobs.size()), NaiveWall.str(),
                       fmtRate(NaiveRate), "1.00x", "-"});
    BatchTable.addRow({"shared-trace (cache on)", std::to_string(Jobs.size()),
                       SharedWall.str(), fmtRate(SharedRate),
                       fmtX(BatchSpeedup), Identical ? "yes" : "NO"});
    std::cout << BatchTable.render() << "(" << Jobs.size()
              << "-period sweep; stream cache: " << Stats.Streams.Hits
              << " hit(s), " << Stats.Streams.Misses << " simulation(s))\n\n";
  }

  // --- 3. Set-sharded parallel collector: shard-count sweep -------------
  // One large synthetic trace, simulated sequentially once (baseline)
  // and then through the sharded collector at increasing shard counts
  // with a pool of shards-1 helpers. Every sweep point must reproduce
  // the sequential miss stream element-for-element.
  const size_t ShardTraceRefs = Smoke ? 400'000 : 8'000'000;
  const Trace ShardTrace = makeTrace(ShardTraceRefs);
  const CacheGeometry ShardGeometry = paperL1Geometry();
  MissStreamOptions ShardOptions; // LRU, loads only

  // Warm-up + baseline.
  collectL1MissStream(ShardTrace, ShardGeometry, ShardOptions);
  Clock::time_point SeqStart = Clock::now();
  const std::vector<MissEvent> SeqStream =
      collectL1MissStream(ShardTrace, ShardGeometry, ShardOptions);
  const double SeqSecs = secondsSince(SeqStart);
  const double SeqRate = static_cast<double>(ShardTraceRefs) / SeqSecs;

  std::vector<ShardRow> Sweep;
  Sweep.push_back({1, 1, SeqRate, 1.0, true});
  bool ShardIdentical = true;
  const std::vector<unsigned> ShardCounts =
      Smoke ? std::vector<unsigned>{2, 4} : std::vector<unsigned>{2, 4, 8};
  for (unsigned K : ShardCounts) {
    ThreadPool Pool(K - 1);
    ThreadBudget Budget(K);
    ShardCachePool CachePool;
    SimContext Ctx;
    Ctx.Pool = &Pool;
    Ctx.Budget = &Budget;
    Ctx.CachePool = &CachePool;
    Ctx.Shards = K;
    Ctx.MinRefsToShard = 0;

    // Warm-up (also primes the shard-cache pool), then the measured run.
    collectL1MissStreamParallel(ShardTrace, ShardGeometry, ShardOptions, Ctx);
    Clock::time_point Start = Clock::now();
    const std::vector<MissEvent> Stream =
        collectL1MissStreamParallel(ShardTrace, ShardGeometry, ShardOptions,
                                    Ctx);
    const double Secs = secondsSince(Start);

    ShardRow Row;
    Row.Shards = K;
    Row.Threads = K;
    Row.AccessesPerSec = static_cast<double>(ShardTraceRefs) / Secs;
    Row.Speedup = Row.AccessesPerSec / SeqRate;
    Row.Identical = Stream == SeqStream;
    ShardIdentical = ShardIdentical && Row.Identical;
    Sweep.push_back(Row);
  }

  if (!JsonOnly) {
    TextTable ShardTable(
        {"shards", "threads", "accesses/sec", "speedup", "stream =="});
    for (const ShardRow &Row : Sweep)
      ShardTable.addRow({std::to_string(Row.Shards),
                         std::to_string(Row.Threads),
                         fmtRate(Row.AccessesPerSec), fmtX(Row.Speedup),
                         Row.Identical ? "yes" : "NO"});
    std::cout << ShardTable.render() << "(" << ShardTraceRefs
              << "-ref trace, " << ShardGeometry.describe()
              << ", LRU; speedups depend on available cores)\n";
  }

  // --- Machine-readable trajectory --------------------------------------
  {
    std::ofstream Json("BENCH_sim_throughput.json");
    Json.precision(6);
    Json << std::fixed << "{\n"
         << "  \"bench\": \"sim_throughput\",\n"
         << "  \"smoke\": " << (Smoke ? "true" : "false") << ",\n"
         << "  \"cache_refs\": " << NumRefs << ",\n"
         << "  \"scalar_refs_per_sec\": " << ScalarRate << ",\n"
         << "  \"soa_refs_per_sec\": " << SoaRate << ",\n"
         << "  \"soa_speedup\": " << SoaSpeedup << ",\n"
         << "  \"configs\": [\n";
    for (size_t I = 0; I < Configs.size(); ++I) {
      const ConfigRow &Row = Configs[I];
      Json << "    {\"config\": \"" << Row.Name << "\", \"policy\": \""
           << policyName(Row.Policy)
           << "\", \"scalar_refs_per_sec\": " << Row.ScalarRate
           << ", \"soa_refs_per_sec\": " << Row.SoaRate << "}"
           << (I + 1 < Configs.size() ? "," : "") << "\n";
    }
    Json << "  ],\n"
         << "  \"batch_jobs\": " << Jobs.size() << ",\n"
         << "  \"naive_jobs_per_sec\": " << NaiveRate << ",\n"
         << "  \"shared_jobs_per_sec\": " << SharedRate << ",\n"
         << "  \"shared_speedup\": " << BatchSpeedup << ",\n"
         << "  \"stream_cache_hits\": " << Stats.Streams.Hits << ",\n"
         << "  \"stream_cache_simulations\": " << Stats.Streams.Misses
         << ",\n"
         << "  \"byte_identical\": " << (Identical ? "true" : "false")
         << "\n}\n";
  }
  {
    std::ofstream Json("BENCH_simshard.json");
    Json.precision(6);
    Json << std::fixed << "{\n"
         << "  \"bench\": \"simshard\",\n"
         << "  \"smoke\": " << (Smoke ? "true" : "false") << ",\n"
         << "  \"trace_refs\": " << ShardTraceRefs << ",\n"
         << "  \"stream_identical\": " << (ShardIdentical ? "true" : "false")
         << ",\n"
         << "  \"sweep\": [\n";
    for (size_t I = 0; I < Sweep.size(); ++I) {
      const ShardRow &Row = Sweep[I];
      Json << "    {\"shards\": " << Row.Shards
           << ", \"threads\": " << Row.Threads
           << ", \"accesses_per_sec\": " << Row.AccessesPerSec
           << ", \"speedup_vs_1\": " << Row.Speedup
           << ", \"identical\": " << (Row.Identical ? "true" : "false")
           << "}" << (I + 1 < Sweep.size() ? "," : "") << "\n";
    }
    Json << "  ]\n}\n";
  }
  if (!JsonOnly)
    std::cout
        << "\nwrote BENCH_sim_throughput.json and BENCH_simshard.json\n";

  if (!Identical) {
    std::cerr << "error: shared-trace artifacts differ from the naive "
                 "path's bytes\n";
    return 1;
  }
  if (!ShardIdentical) {
    std::cerr << "error: sharded miss stream differs from the sequential "
                 "collector's\n";
    return 1;
  }
  return 0;
}
