//===- bench/sim_throughput.cpp - Simulation engine throughput ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Tracks the three perf levers of the simulation engine:
//
//  1. simulated-accesses/sec of the SoA Cache hot path against the
//     preserved scalar ReferenceCache, reported per cache
//     configuration (geometry x policy) on the same mixed
//     strided/random reference stream (identical behaviour is enforced
//     separately by tests/CacheSoaExactnessTest.cpp);
//
//  2. jobs/sec of a sampling-period-sweep batch — the paper-style
//     evaluation matrix — with the shared-trace engine + miss-stream
//     cache ON (runJobsShared) vs OFF (naive runJobs), verifying along
//     the way that both paths produce byte-identical artifacts;
//
//  3. shard-count sweeps of the set-sharded parallel collector
//     (collectL1MissStreamParallel) and of the merge-elided
//     aggregate-only collector (collectL1MissAggregates), in two
//     tiers: the default tier (millions of refs — catches setup-cost
//     regressions) and, with --large, a steady-state tier of >= 100M
//     synthetic refs generated procedurally in memory (no giant trace
//     file is ever materialized) where partition/merge serial
//     fractions, not warm-up, dominate the measurement. Every sweep
//     point is verified element-identical (ordered collector) or
//     field-identical (aggregates) to the sequential baseline.
//
//  4. route-once partition reuse (--large adds a steady-state tier):
//     twelve L1-class cache configurations sharing one index geometry
//     (64 sets x 64B lines — four sizes at matching associativity, x
//     every deterministic policy) replayed through the sharded
//     aggregate collector with per-config routing vs a PartitionCache
//     that routes the trace once and replays it for every
//     configuration. The tier also A/B-times the count+scatter
//     router against the fused single-pass router on the same trace
//     (both must produce identical partitions), and verifies ordered
//     miss streams are byte-identical cache on vs off.
//
// Emits machine-readable BENCH_sim_throughput.json and
// BENCH_simshard.json (one entry per tier) in the working directory so
// the perf trajectory is comparable across PRs; exits nonzero if any
// identity check fails. `--smoke` shrinks the workloads for CI;
// `--json` suppresses the human-readable tables (the JSON files are
// always written); `--refs N` overrides the large tier's trace length;
// `--fused-router` replays the sweeps through the fused single-pass
// router instead of the count+scatter default; `--gate` additionally
// fails the run if the large tier's 2-shard ordered-collector speedup
// falls below 1.0x — the CI floor that keeps the sharded engine from
// regressing below sequential again — or the large sweep-reuse tier's
// route-once speedup falls below 1.5x over per-config routing.
//
//===----------------------------------------------------------------------===//

#include "pipeline/JobRunner.h"
#include "pmu/PebsEvent.h"
#include "sim/PartitionCache.h"
#include "sim/MachineConfig.h"
#include "sim/ReferenceCache.h"
#include "support/Rng.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

using namespace ccprof;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// Mixed reference stream: strided array sweeps (the workloads' common
/// pattern) interleaved with random pointers, plus stores.
std::vector<std::pair<uint64_t, bool>> makeStream(size_t NumRefs) {
  std::vector<std::pair<uint64_t, bool>> Refs;
  Refs.reserve(NumRefs);
  Xoshiro256 Rng(0xbe9c'47a1);
  uint64_t Stride = 0;
  for (size_t I = 0; I < NumRefs; ++I) {
    uint64_t Addr;
    if (I % 4 != 0) {
      Stride += 24; // walks sets, revisits lines
      Addr = Stride % (1 << 20);
    } else {
      Addr = Rng.nextBounded(1 << 20);
    }
    Refs.emplace_back(Addr, Rng.nextBounded(8) < 3);
  }
  return Refs;
}

/// The same mixed distribution generated straight into a Trace — the
/// large tier synthesizes >= 100M refs this way, so no intermediate
/// stream vector (and no trace file) is ever materialized.
Trace makeTrace(size_t NumRefs) {
  Trace T;
  T.reserve(NumRefs);
  Xoshiro256 Rng(0xbe9c'47a1);
  uint64_t Stride = 0;
  for (size_t I = 0; I < NumRefs; ++I) {
    uint64_t Addr;
    if (I % 4 != 0) {
      Stride += 24; // walks sets, revisits lines
      Addr = Stride % (1 << 20);
    } else {
      Addr = Rng.nextBounded(1 << 20);
    }
    if (Rng.nextBounded(8) < 3)
      T.recordStore(0, Addr, 8);
    else
      T.recordLoad(0, Addr, 8);
  }
  return T;
}

template <typename CacheT>
double refsPerSec(CacheT &C,
                  const std::vector<std::pair<uint64_t, bool>> &Refs,
                  uint64_t &HitSink) {
  Clock::time_point Start = Clock::now();
  for (const auto &[Addr, IsWrite] : Refs)
    HitSink += C.access(Addr, IsWrite).Hit;
  double Secs = secondsSince(Start);
  return static_cast<double>(Refs.size()) / Secs;
}

std::string serializeAll(const std::vector<JobOutcome> &Outcomes) {
  std::stringstream Stream;
  for (const JobOutcome &Outcome : Outcomes)
    if (Outcome.ok())
      Outcome.Artifact.writeTo(Stream);
  return Stream.str();
}

std::string fmtRate(double PerSec) {
  std::ostringstream Out;
  Out.precision(2);
  Out << std::fixed;
  if (PerSec >= 1e6)
    Out << PerSec / 1e6 << "M";
  else if (PerSec >= 1e3)
    Out << PerSec / 1e3 << "k";
  else
    Out << PerSec;
  return Out.str();
}

std::string fmtX(double Value) {
  std::ostringstream Out;
  Out.precision(2);
  Out << std::fixed << Value << "x";
  return Out.str();
}

const char *policyName(ReplacementKind Policy) {
  switch (Policy) {
  case ReplacementKind::Lru:
    return "LRU";
  case ReplacementKind::Fifo:
    return "FIFO";
  case ReplacementKind::TreePlru:
    return "TreePLRU";
  case ReplacementKind::Random:
    return "Random";
  }
  return "?";
}

/// One geometry x policy row of the per-config hot-path comparison.
struct ConfigRow {
  std::string Name;
  CacheGeometry Geometry;
  ReplacementKind Policy;
  double ScalarRate = 0.0;
  double SoaRate = 0.0;
};

/// One shard count of the sharded-collector sweep: the ordered
/// (merged-stream) collector and the merge-elided aggregate collector,
/// both against the sequential ordered baseline.
struct ShardRow {
  unsigned Shards = 0;
  unsigned Threads = 0;
  double StreamRate = 0.0;
  double StreamSpeedup = 1.0;
  double AggRate = 0.0;
  double AggSpeedup = 1.0;
  bool Identical = true;
};

/// One trace-size tier of the shard sweep.
struct ShardTier {
  std::string Name;
  size_t TraceRefs = 0;
  double SeqRate = 0.0;    ///< Sequential ordered collector.
  double SeqAggRate = 0.0; ///< Sequential aggregate collector.
  std::vector<ShardRow> Sweep;
  bool Identical = true;
};

/// Runs one tier: synthesize the trace, measure the sequential
/// baselines, then sweep shard counts with a K-thread execution shape,
/// verifying exactness at every point.
ShardTier runShardTier(const std::string &Name, size_t NumRefs,
                       const std::vector<unsigned> &ShardCounts) {
  const CacheGeometry Geometry = paperL1Geometry();
  const MissStreamOptions Options; // LRU, loads only
  const Trace T = makeTrace(NumRefs);

  ShardTier Tier;
  Tier.Name = Name;
  Tier.TraceRefs = NumRefs;

  // One warm-up replay (page faults, lazy allocation), then timed
  // sequential baselines for both collectors.
  collectL1MissStream(T, Geometry, Options);
  Clock::time_point SeqStart = Clock::now();
  const std::vector<MissEvent> SeqStream =
      collectL1MissStream(T, Geometry, Options);
  Tier.SeqRate = static_cast<double>(NumRefs) / secondsSince(SeqStart);

  Clock::time_point SeqAggStart = Clock::now();
  const MissStreamAggregates SeqAgg =
      collectL1MissAggregates(T, Geometry, Options);
  Tier.SeqAggRate = static_cast<double>(NumRefs) / secondsSince(SeqAggStart);

  Tier.Sweep.push_back({1, 1, Tier.SeqRate, 1.0, Tier.SeqAggRate,
                        Tier.SeqAggRate / Tier.SeqRate, true});

  for (unsigned K : ShardCounts) {
    // Full machine budget per row: the sweep asks how *shard count*
    // scales on this runner, and the grant spends threads beyond the
    // shard count on the partition / merge / rebuild phases (they
    // chunk past K). Floor at K so one-core machines still exercise
    // every parallel code path for the identity checks.
    const unsigned Threads =
        std::max(K, std::max(1u, std::thread::hardware_concurrency()));
    ThreadPool Pool(Threads - 1);
    ThreadBudget Budget(Threads);
    ShardCachePool CachePool;
    ShardExecStats Stats;
    SimContext Ctx;
    Ctx.Pool = &Pool;
    Ctx.Budget = &Budget;
    Ctx.CachePool = &CachePool;
    Ctx.Stats = &Stats;
    Ctx.Shards = K;
    Ctx.MinRefsToShard = 0;

    // Warm-up (also primes the shard-cache pool), then the measured
    // runs: ordered collector first, aggregate-only second.
    collectL1MissStreamParallel(T, Geometry, Options, Ctx);
    Clock::time_point Start = Clock::now();
    const std::vector<MissEvent> Stream =
        collectL1MissStreamParallel(T, Geometry, Options, Ctx);
    const double StreamSecs = secondsSince(Start);

    Clock::time_point AggStart = Clock::now();
    const MissStreamAggregates Agg =
        collectL1MissAggregates(T, Geometry, Options, Ctx);
    const double AggSecs = secondsSince(AggStart);

    ShardRow Row;
    Row.Shards = K;
    Row.Threads = Threads;
    Row.StreamRate = static_cast<double>(NumRefs) / StreamSecs;
    Row.StreamSpeedup = Row.StreamRate / Tier.SeqRate;
    Row.AggRate = static_cast<double>(NumRefs) / AggSecs;
    Row.AggSpeedup = Row.AggRate / Tier.SeqRate;
    Row.Identical = Stream == SeqStream && Agg == SeqAgg &&
                    Agg.Events == SeqStream.size() &&
                    Stats.ElidedMerges.load() > 0;
    Tier.Identical = Tier.Identical && Row.Identical;
    Tier.Sweep.push_back(Row);
  }
  return Tier;
}

/// One trace-size tier of the route-once sweep: N configurations
/// sharing an index geometry replayed with per-config routing vs a
/// PartitionCache, plus a router A/B on the same trace.
struct SweepReuseTier {
  std::string Name;
  size_t TraceRefs = 0;
  size_t NumConfigs = 0;
  unsigned Shards = 0;
  double PerConfigSecs = 0.0; ///< Every config routes from scratch.
  double ReuseSecs = 0.0;     ///< Route once, replay many.
  double Speedup = 1.0;
  uint64_t Builds = 0; ///< Partitions routed in reuse mode (want 1).
  uint64_t Reuses = 0; ///< Route-once cache hits (want N - 1).
  double RouterCsSecs = 0.0;    ///< Count+scatter routing pass alone.
  double RouterFusedSecs = 0.0; ///< Fused routing pass alone.
  bool Identical = true;
};

/// Runs one sweep-reuse tier: synthesize the trace, replay the
/// eight-config sweep through the sharded aggregate collector with
/// per-config routing, then again through a PartitionCache, and verify
/// identical aggregates, byte-identical ordered streams cache on vs
/// off, exact build/hit accounting, and router A/B partition identity.
SweepReuseTier runSweepReuseTier(const std::string &Name, size_t NumRefs,
                                 PartitionRouter Router) {
  // Twelve configurations sharing one index geometry (64 sets x 64B
  // lines): four L1-class sizes with matching associativity — the
  // paper's own L1 (32K/8-way, 64 sets) included — x every
  // deterministic policy (Random falls back to sequential replay and
  // never partitions). The shard partition depends only on (set
  // count, line size, shard count), so one routing pass serves every
  // replay. Low associativity is deliberate: replay cost per ref
  // grows with ways while routing cost does not, so an L1-class
  // sweep is where route-once pays the most.
  struct SweepConfig {
    CacheGeometry Geometry;
    ReplacementKind Policy;
  };
  std::vector<SweepConfig> Configs;
  for (ReplacementKind Policy :
       {ReplacementKind::Lru, ReplacementKind::Fifo,
        ReplacementKind::TreePlru})
    for (const auto &[SizeKb, Ways] :
         std::initializer_list<std::pair<uint64_t, uint32_t>>{
             {4, 1}, {8, 2}, {16, 4}, {32, 8}})
      Configs.push_back({CacheGeometry(SizeKb * 1024, 64, Ways), Policy});

  const Trace T = makeTrace(NumRefs);
  constexpr unsigned SweepShards = 4;
  const unsigned Threads = std::max(
      SweepShards, std::max(1u, std::thread::hardware_concurrency()));
  ThreadPool Pool(Threads - 1);
  ThreadBudget Budget(Threads);
  ShardCachePool CachePool;

  SweepReuseTier Tier;
  Tier.Name = Name;
  Tier.TraceRefs = NumRefs;
  Tier.NumConfigs = Configs.size();
  Tier.Shards = SweepShards;

  auto makeCtx = [&](ShardExecStats &Stats, PartitionCache *Cache,
                     uint64_t TraceId) {
    SimContext Ctx;
    Ctx.Pool = &Pool;
    Ctx.Budget = &Budget;
    Ctx.CachePool = &CachePool;
    Ctx.Stats = &Stats;
    Ctx.Shards = SweepShards;
    Ctx.MinRefsToShard = 0;
    Ctx.Router = Router;
    Ctx.Partitions = Cache;
    Ctx.TraceId = TraceId;
    return Ctx;
  };

  // The timed sweeps replay through the merge-elided aggregate
  // collector — the configuration-sweep fast path — so routing cost
  // is the difference under test; the ordered collector's byte
  // identity is checked untimed below.
  auto sweepAggregates = [&](const SimContext &Ctx) {
    std::vector<MissStreamAggregates> Out;
    Out.reserve(Configs.size());
    for (const SweepConfig &C : Configs) {
      MissStreamOptions Options;
      Options.Policy = C.Policy;
      Out.push_back(collectL1MissAggregates(T, C.Geometry, Options, Ctx));
    }
    return Out;
  };

  // Warm-up on one configuration: page faults, arena-sized
  // allocations, the shard-cache pool. One replay is enough — the
  // timed sweeps reuse the same allocator arenas config over config.
  {
    ShardExecStats Warm;
    MissStreamOptions Options;
    Options.Policy = Configs.front().Policy;
    collectL1MissAggregates(T, Configs.front().Geometry, Options,
                            makeCtx(Warm, nullptr, 0));
  }

  ShardExecStats PerConfigStats;
  Clock::time_point PerConfigStart = Clock::now();
  const std::vector<MissStreamAggregates> PerConfig =
      sweepAggregates(makeCtx(PerConfigStats, nullptr, 0));
  Tier.PerConfigSecs = secondsSince(PerConfigStart);

  PartitionCache Partitions;
  const uint64_t TraceId = Partitions.registerTrace();
  ShardExecStats ReuseStats;
  Clock::time_point ReuseStart = Clock::now();
  const std::vector<MissStreamAggregates> Reused =
      sweepAggregates(makeCtx(ReuseStats, &Partitions, TraceId));
  Tier.ReuseSecs = secondsSince(ReuseStart);
  Partitions.releaseTrace(TraceId);

  Tier.Speedup = Tier.PerConfigSecs / Tier.ReuseSecs;
  Tier.Builds = ReuseStats.PartitionBuilds.load();
  Tier.Reuses = ReuseStats.PartitionReuses.load();
  Tier.Identical = PerConfig == Reused && Tier.Builds == 1 &&
                   Tier.Reuses == Configs.size() - 1 &&
                   PerConfigStats.PartitionBuilds.load() == Configs.size();

  // Ordered-stream byte identity, cache on vs off, on one config per
  // policy (the aggregate equality above already spans all eight).
  // The second config shares the first's geometry key, so the cached
  // run exercises the reuse path in ordered mode too.
  {
    PartitionCache OrderedCache;
    const uint64_t OrderedId = OrderedCache.registerTrace();
    for (size_t I : {size_t{0}, Configs.size() - 1}) {
      MissStreamOptions Options;
      Options.Policy = Configs[I].Policy;
      ShardExecStats OffStats, OnStats;
      const std::vector<MissEvent> Off = collectL1MissStreamParallel(
          T, Configs[I].Geometry, Options, makeCtx(OffStats, nullptr, 0));
      const std::vector<MissEvent> On = collectL1MissStreamParallel(
          T, Configs[I].Geometry, Options,
          makeCtx(OnStats, &OrderedCache, OrderedId));
      Tier.Identical = Tier.Identical && Off == On;
    }
    OrderedCache.releaseTrace(OrderedId);
  }

  // Router A/B: the routing pass alone — count+scatter vs fused — on
  // this tier's trace. Both must produce the identical partition.
  {
    const CacheGeometry IndexGeometry = Configs.front().Geometry;
    const std::vector<SetRange> Plan =
        planShards(IndexGeometry.numSets(), SweepShards);
    partitionBySetParallel(T.records(), IndexGeometry, Plan, Pool,
                           Threads - 1); // warm-up
    Clock::time_point CsStart = Clock::now();
    const ShardPartition Cs = partitionBySetParallel(
        T.records(), IndexGeometry, Plan, Pool, Threads - 1);
    Tier.RouterCsSecs = secondsSince(CsStart);
    Clock::time_point FusedStart = Clock::now();
    const ShardPartition Fused = partitionBySetFused(
        T.records(), IndexGeometry, Plan, Pool, Threads - 1);
    Tier.RouterFusedSecs = secondsSince(FusedStart);
    Tier.Identical = Tier.Identical && Fused.Arena == Cs.Arena &&
                     Fused.Offsets == Cs.Offsets;
  }
  return Tier;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  bool JsonOnly = false;
  bool Large = false;
  bool Gate = false;
  PartitionRouter Router = PartitionRouter::CountScatter;
  size_t LargeRefs = 100'000'000;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strcmp(Argv[I], "--json") == 0)
      JsonOnly = true;
    else if (std::strcmp(Argv[I], "--large") == 0)
      Large = true;
    else if (std::strcmp(Argv[I], "--gate") == 0)
      Gate = true;
    else if (std::strcmp(Argv[I], "--fused-router") == 0)
      Router = PartitionRouter::Fused;
    else if (std::strcmp(Argv[I], "--refs") == 0 && I + 1 < Argc)
      LargeRefs = static_cast<size_t>(std::strtoull(Argv[++I], nullptr, 10));
    else {
      std::cerr << "usage: sim_throughput [--smoke] [--json] [--large] "
                   "[--refs N] [--fused-router] [--gate]\n";
      return 2;
    }
  }
  if (Gate && !Large) {
    std::cerr << "error: --gate requires --large (the floor is defined on "
                 "the steady-state tier)\n";
    return 2;
  }

  if (!JsonOnly)
    std::cout << "=== Simulation engine throughput"
              << (Smoke ? " (smoke)" : "") << " ===\n\n";

  // --- 1. SoA hot path vs scalar model, per cache configuration --------
  const size_t NumRefs = Smoke ? 400'000 : 4'000'000;
  std::vector<std::pair<uint64_t, bool>> Refs = makeStream(NumRefs);

  std::vector<ConfigRow> Configs = {
      {"paper L1", paperL1Geometry(), ReplacementKind::Lru},
      {"paper L1", paperL1Geometry(), ReplacementKind::Fifo},
      {"256K/8w L2", CacheGeometry(256 * 1024, 64, 8), ReplacementKind::Lru},
  };

  uint64_t HitSink = 0;
  for (ConfigRow &Row : Configs) {
    {
      ReferenceCache Warm(Row.Geometry, Row.Policy),
          Timed(Row.Geometry, Row.Policy);
      refsPerSec(Warm, Refs, HitSink); // warm-up: page faults, lazy init
      Row.ScalarRate = refsPerSec(Timed, Refs, HitSink);
    }
    {
      Cache Warm(Row.Geometry, Row.Policy), Timed(Row.Geometry, Row.Policy);
      refsPerSec(Warm, Refs, HitSink);
      Row.SoaRate = refsPerSec(Timed, Refs, HitSink);
    }
  }

  if (!JsonOnly) {
    TextTable CacheTable({"config", "policy", "scalar refs/sec",
                          "SoA refs/sec", "SoA speedup"});
    for (const ConfigRow &Row : Configs)
      CacheTable.addRow({Row.Name, policyName(Row.Policy),
                         fmtRate(Row.ScalarRate), fmtRate(Row.SoaRate),
                         fmtX(Row.SoaRate / Row.ScalarRate)});
    std::cout << CacheTable.render() << "(hit sink " << HitSink % 10 << ", "
              << NumRefs << " refs per measurement)\n\n";
  }
  const double ScalarRate = Configs.front().ScalarRate;
  const double SoaRate = Configs.front().SoaRate;
  const double SoaSpeedup = SoaRate / ScalarRate;

  // --- 2. Shared-trace batch vs naive per-job simulation ----------------
  // The acceptance scenario: one workload swept over >= 4 sampling
  // periods — identical trace and miss stream per job, different
  // samplers. Paper Sec. 5.3 sweeps exactly this axis.
  BatchMatrix Matrix;
  Matrix.Workloads = {"Symmetrization"};
  Matrix.Periods = Smoke ? std::vector<uint64_t>{171, 606, 1212, 2424}
                         : std::vector<uint64_t>{171, 303, 606, 1212, 2424,
                                                 4848};
  std::vector<JobSpec> Jobs = expandMatrix(Matrix);

  runJobs(Jobs, 1); // warm-up: page faults, lazy init

  Clock::time_point NaiveStart = Clock::now();
  std::vector<JobOutcome> Naive = runJobs(Jobs, 1);
  const double NaiveSecs = secondsSince(NaiveStart);

  SharedBatchStats Stats;
  Clock::time_point SharedStart = Clock::now();
  std::vector<JobOutcome> Shared =
      runJobsShared(Jobs, 1, 0, nullptr, nullptr, &Stats);
  const double SharedSecs = secondsSince(SharedStart);

  size_t Failed = 0;
  for (const JobOutcome &Outcome : Naive)
    Failed += !Outcome.ok();
  for (const JobOutcome &Outcome : Shared)
    Failed += !Outcome.ok();
  if (Failed != 0) {
    std::cerr << "error: " << Failed << " job(s) failed\n";
    return 1;
  }
  const bool Identical = serializeAll(Naive) == serializeAll(Shared);

  const double NaiveRate = static_cast<double>(Jobs.size()) / NaiveSecs;
  const double SharedRate = static_cast<double>(Jobs.size()) / SharedSecs;
  const double BatchSpeedup = SharedRate / NaiveRate;

  if (!JsonOnly) {
    TextTable BatchTable(
        {"engine", "jobs", "wall (s)", "jobs/sec", "speedup", "bytes =="});
    std::ostringstream NaiveWall, SharedWall;
    NaiveWall.precision(3);
    NaiveWall << std::fixed << NaiveSecs;
    SharedWall.precision(3);
    SharedWall << std::fixed << SharedSecs;
    BatchTable.addRow({"naive (miss-stream cache off)",
                       std::to_string(Jobs.size()), NaiveWall.str(),
                       fmtRate(NaiveRate), "1.00x", "-"});
    BatchTable.addRow({"shared-trace (cache on)", std::to_string(Jobs.size()),
                       SharedWall.str(), fmtRate(SharedRate),
                       fmtX(BatchSpeedup), Identical ? "yes" : "NO"});
    std::cout << BatchTable.render() << "(" << Jobs.size()
              << "-period sweep; stream cache: " << Stats.Streams.Hits
              << " hit(s), " << Stats.Streams.Misses << " simulation(s))\n\n";
  }

  // --- 3. Set-sharded parallel collector: tiered shard-count sweeps -----
  // Default tier: a few million refs, cheap enough to run everywhere,
  // sensitive to setup cost. Large tier (--large): >= 100M synthetic
  // refs so the measurement is steady-state — this is the tier the CI
  // speedup gate reads, because the smoke-sized sweep punishes the
  // parallel path with fixed costs the real workloads amortize away.
  const std::vector<unsigned> ShardCounts =
      Smoke ? std::vector<unsigned>{2, 4} : std::vector<unsigned>{2, 4, 8};
  std::vector<ShardTier> Tiers;
  Tiers.push_back(runShardTier(Smoke ? "smoke" : "standard",
                               Smoke ? 400'000 : 8'000'000, ShardCounts));
  if (Large)
    Tiers.push_back(runShardTier("large", LargeRefs,
                                 std::vector<unsigned>{2, 4}));
  bool ShardIdentical = true;
  for (const ShardTier &Tier : Tiers)
    ShardIdentical = ShardIdentical && Tier.Identical;

  if (!JsonOnly) {
    for (const ShardTier &Tier : Tiers) {
      TextTable ShardTable({"shards", "threads", "stream refs/sec",
                            "speedup", "agg refs/sec", "agg speedup",
                            "exact =="});
      for (const ShardRow &Row : Tier.Sweep)
        ShardTable.addRow({std::to_string(Row.Shards),
                           std::to_string(Row.Threads),
                           fmtRate(Row.StreamRate), fmtX(Row.StreamSpeedup),
                           fmtRate(Row.AggRate), fmtX(Row.AggSpeedup),
                           Row.Identical ? "yes" : "NO"});
      std::cout << "[" << Tier.Name << " tier]\n"
                << ShardTable.render() << "(" << Tier.TraceRefs
                << "-ref trace, " << paperL1Geometry().describe()
                << ", LRU; agg = merge-elided aggregate collector; "
                   "speedups depend on available cores)\n\n";
    }
  }

  // --- 4. Route once, replay many: partition reuse across a sweep -------
  std::vector<SweepReuseTier> ReuseTiers;
  ReuseTiers.push_back(runSweepReuseTier(Smoke ? "smoke" : "standard",
                                         Smoke ? 400'000 : 8'000'000,
                                         Router));
  if (Large)
    ReuseTiers.push_back(runSweepReuseTier("large", LargeRefs, Router));
  bool ReuseIdentical = true;
  for (const SweepReuseTier &Tier : ReuseTiers)
    ReuseIdentical = ReuseIdentical && Tier.Identical;

  if (!JsonOnly) {
    TextTable ReuseTable({"tier", "configs", "per-config (s)",
                          "route-once (s)", "speedup", "routed/reused",
                          "router cs (s)", "router fused (s)", "exact =="});
    for (const SweepReuseTier &Tier : ReuseTiers) {
      std::ostringstream PerConfig, Reuse, Cs, Fused;
      PerConfig.precision(3);
      PerConfig << std::fixed << Tier.PerConfigSecs;
      Reuse.precision(3);
      Reuse << std::fixed << Tier.ReuseSecs;
      Cs.precision(3);
      Cs << std::fixed << Tier.RouterCsSecs;
      Fused.precision(3);
      Fused << std::fixed << Tier.RouterFusedSecs;
      ReuseTable.addRow({Tier.Name, std::to_string(Tier.NumConfigs),
                         PerConfig.str(), Reuse.str(), fmtX(Tier.Speedup),
                         std::to_string(Tier.Builds) + "/" +
                             std::to_string(Tier.Reuses),
                         Cs.str(), Fused.str(),
                         Tier.Identical ? "yes" : "NO"});
    }
    std::cout << "[route once, replay many]\n"
              << ReuseTable.render()
              << "(12 configs sharing 64 sets x 64B lines — 4K/1w..32K/8w "
                 "x {LRU, FIFO, TreePLRU} — aggregate collector at "
              << ReuseTiers.front().Shards << " shards; replay router: "
              << (Router == PartitionRouter::Fused ? "fused"
                                                   : "count+scatter")
              << ")\n\n";
  }

  // --- Speedup gate (CI) ------------------------------------------------
  // The floor is deliberately modest — 2 shards must at least beat
  // sequential on the steady-state tier — so the gate trips on "the
  // sharded engine lost its parallelism" (the PR-4 regression mode),
  // not on runner noise. The sweep-reuse floor asks that route-once
  // deliver most of its Amdahl bound N(P+R)/(P+NR) on the
  // twelve-config L1-class sweep: with routing P comparable to one
  // low-associativity aggregate replay R on a serialized box, twelve
  // configs bound the payoff well above 1.6x, so 1.5x trips on "the
  // cache stopped reusing" rather than on measurement noise.
  constexpr double GateFloor2Shards = 1.0;
  constexpr double GateFloorSweepReuse = 1.5;
  bool GatePassed = true;
  // Recorded in the JSON even when the gate is advisory, so local and
  // CI trajectories stay comparable.
  double Gate2ShardSpeedup = 0.0;
  for (const ShardRow &Row : Tiers.back().Sweep)
    if (Row.Shards == 2)
      Gate2ShardSpeedup = Row.StreamSpeedup;
  const double GateSweepSpeedup = ReuseTiers.back().Speedup;
  if (Gate)
    GatePassed = Gate2ShardSpeedup >= GateFloor2Shards &&
                 GateSweepSpeedup >= GateFloorSweepReuse;

  // --- Machine-readable trajectory --------------------------------------
  {
    std::ofstream Json("BENCH_sim_throughput.json");
    Json.precision(6);
    Json << std::fixed << "{\n"
         << "  \"bench\": \"sim_throughput\",\n"
         << "  \"smoke\": " << (Smoke ? "true" : "false") << ",\n"
         << "  \"cache_refs\": " << NumRefs << ",\n"
         << "  \"scalar_refs_per_sec\": " << ScalarRate << ",\n"
         << "  \"soa_refs_per_sec\": " << SoaRate << ",\n"
         << "  \"soa_speedup\": " << SoaSpeedup << ",\n"
         << "  \"configs\": [\n";
    for (size_t I = 0; I < Configs.size(); ++I) {
      const ConfigRow &Row = Configs[I];
      Json << "    {\"config\": \"" << Row.Name << "\", \"policy\": \""
           << policyName(Row.Policy)
           << "\", \"scalar_refs_per_sec\": " << Row.ScalarRate
           << ", \"soa_refs_per_sec\": " << Row.SoaRate << "}"
           << (I + 1 < Configs.size() ? "," : "") << "\n";
    }
    Json << "  ],\n"
         << "  \"batch_jobs\": " << Jobs.size() << ",\n"
         << "  \"naive_jobs_per_sec\": " << NaiveRate << ",\n"
         << "  \"shared_jobs_per_sec\": " << SharedRate << ",\n"
         << "  \"shared_speedup\": " << BatchSpeedup << ",\n"
         << "  \"stream_cache_hits\": " << Stats.Streams.Hits << ",\n"
         << "  \"stream_cache_simulations\": " << Stats.Streams.Misses
         << ",\n"
         << "  \"byte_identical\": " << (Identical ? "true" : "false")
         << "\n}\n";
  }
  {
    std::ofstream Json("BENCH_simshard.json");
    Json.precision(6);
    Json << std::fixed << "{\n"
         << "  \"bench\": \"simshard\",\n"
         << "  \"smoke\": " << (Smoke ? "true" : "false") << ",\n"
         << "  \"hardware_concurrency\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"stream_identical\": " << (ShardIdentical ? "true" : "false")
         << ",\n"
         << "  \"tiers\": [\n";
    for (size_t TI = 0; TI < Tiers.size(); ++TI) {
      const ShardTier &Tier = Tiers[TI];
      Json << "    {\"tier\": \"" << Tier.Name << "\", \"trace_refs\": "
           << Tier.TraceRefs << ",\n"
           << "     \"seq_refs_per_sec\": " << Tier.SeqRate
           << ", \"seq_agg_refs_per_sec\": " << Tier.SeqAggRate << ",\n"
           << "     \"identical\": " << (Tier.Identical ? "true" : "false")
           << ",\n"
           << "     \"sweep\": [\n";
      for (size_t I = 0; I < Tier.Sweep.size(); ++I) {
        const ShardRow &Row = Tier.Sweep[I];
        Json << "       {\"shards\": " << Row.Shards
             << ", \"threads\": " << Row.Threads
             << ", \"stream_refs_per_sec\": " << Row.StreamRate
             << ", \"stream_speedup\": " << Row.StreamSpeedup
             << ", \"agg_refs_per_sec\": " << Row.AggRate
             << ", \"agg_speedup\": " << Row.AggSpeedup
             << ", \"identical\": " << (Row.Identical ? "true" : "false")
             << "}" << (I + 1 < Tier.Sweep.size() ? "," : "") << "\n";
      }
      Json << "     ]}" << (TI + 1 < Tiers.size() ? "," : "") << "\n";
    }
    Json << "  ],\n"
         << "  \"replay_router\": \""
         << (Router == PartitionRouter::Fused ? "fused" : "count_scatter")
         << "\",\n"
         << "  \"sweep_reuse\": [\n";
    for (size_t TI = 0; TI < ReuseTiers.size(); ++TI) {
      const SweepReuseTier &Tier = ReuseTiers[TI];
      Json << "    {\"tier\": \"" << Tier.Name
           << "\", \"trace_refs\": " << Tier.TraceRefs
           << ", \"configs\": " << Tier.NumConfigs
           << ", \"shards\": " << Tier.Shards << ",\n"
           << "     \"per_config_seconds\": " << Tier.PerConfigSecs
           << ", \"route_once_seconds\": " << Tier.ReuseSecs
           << ", \"speedup\": " << Tier.Speedup << ",\n"
           << "     \"partitions_routed\": " << Tier.Builds
           << ", \"partitions_reused\": " << Tier.Reuses << ",\n"
           << "     \"router_count_scatter_seconds\": " << Tier.RouterCsSecs
           << ", \"router_fused_seconds\": " << Tier.RouterFusedSecs << ",\n"
           << "     \"identical\": " << (Tier.Identical ? "true" : "false")
           << "}" << (TI + 1 < ReuseTiers.size() ? "," : "") << "\n";
    }
    Json << "  ],\n"
         << "  \"gate\": {\"enforced\": " << (Gate ? "true" : "false")
         << ", \"floor_2shard_speedup\": " << GateFloor2Shards
         << ", \"speedup_2shards\": " << Gate2ShardSpeedup
         << ", \"floor_sweep_reuse_speedup\": " << GateFloorSweepReuse
         << ", \"sweep_reuse_speedup\": " << GateSweepSpeedup
         << ", \"passed\": " << (GatePassed ? "true" : "false") << "}\n"
         << "}\n";
  }
  if (!JsonOnly)
    std::cout
        << "\nwrote BENCH_sim_throughput.json and BENCH_simshard.json\n";

  if (!Identical) {
    std::cerr << "error: shared-trace artifacts differ from the naive "
                 "path's bytes\n";
    return 1;
  }
  if (!ShardIdentical) {
    std::cerr << "error: sharded miss stream differs from the sequential "
                 "collector's\n";
    return 1;
  }
  if (!ReuseIdentical) {
    std::cerr << "error: route-once sweep differs from per-config routing "
                 "(aggregates, ordered bytes, reuse accounting, or router "
                 "A/B partition)\n";
    return 1;
  }
  if (!GatePassed) {
    std::cerr << "error: speedup gate failed — large-tier 2-shard speedup "
              << Gate2ShardSpeedup << "x vs " << GateFloor2Shards
              << "x floor, sweep-reuse speedup " << GateSweepSpeedup
              << "x vs " << GateFloorSweepReuse << "x floor\n";
    return 1;
  }
  return 0;
}
