//===- bench/static_mrc.cpp - Analytic MRC accuracy and screening ---------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Gates the static reuse-profile engine against ground truth:
//
//  1. prediction accuracy — for every case-study workload (both
//     variants) the analytically predicted program and per-loop
//     miss-ratio curves are compared against exact MrcEngine curves of
//     the traced run, point by point over the default sweep plus an L2
//     point. Per-loop exact curves come from the same global
//     stack-distance pass the quantitative consistency checker uses
//     (ConsistencyChecker::measuredCurvesFromTrace), so both sides
//     share interleaving semantics and the Hill–Smith readout;
//
//  2. sweep screening payoff — a multi-period L1 config sweep over the
//     statically clean optimized variants, run with --static-screen
//     semantics: at least one whole (workload, variant) group must
//     skip without generating a trace.
//
// Emits BENCH_staticmrc.json in the working directory. With --gate the
// run exits nonzero when the program-curve max error exceeds the 0.05
// modeling bound anywhere, or when screening fails to skip a full
// group. `--json` suppresses the human-readable tables.
//
//===----------------------------------------------------------------------===//

#include "analysis/ConsistencyChecker.h"
#include "analysis/StaticConflictAnalyzer.h"
#include "pipeline/JobRunner.h"
#include "sim/MrcEngine.h"
#include "support/Table.h"
#include "trace/Canonicalize.h"
#include "workloads/Workload.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

using namespace ccprof;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// The estimator's documented approximation bound (DESIGN.md §11).
constexpr double MaxErrorBound = 0.05;

/// Default sweep plus one L2-sized point: capacity transitions on both
/// sides of the paper L1.
std::vector<CacheGeometry> sweepGeometries() {
  std::vector<CacheGeometry> Geoms = defaultMrcSweepGeometries();
  Geoms.push_back(CacheGeometry(256 * 1024, 64, 8));
  return Geoms;
}

struct AccuracyRow {
  std::string Name;
  uint64_t Loops = 0;
  double AnalyzeSeconds = 0.0;
  double ProgramMaxError = 0.0;
  double ProgramMeanError = 0.0;
  /// Max error over every covered loop, however small.
  double PerLoopMaxError = 0.0;
  /// Max error over loops carrying >= 5% of the traced references —
  /// the loops whose curve actually shapes the program's. Tiny loops
  /// inherit attribution noise from interleaved-group accounting far
  /// above their weight, so only significant loops are gated.
  double SignificantLoopMaxError = 0.0;
};

} // namespace

int main(int Argc, char **Argv) {
  bool JsonOnly = false, Gate = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0)
      JsonOnly = true;
    else if (std::strcmp(Argv[I], "--gate") == 0)
      Gate = true;
  }

  //===------------------------------------------------------------------===//
  // 1. Prediction accuracy: analytic curves vs exact traced curves.
  //===------------------------------------------------------------------===//

  const std::vector<CacheGeometry> Geoms = sweepGeometries();
  StaticConflictAnalyzer::Options AnalyzerOpts;
  AnalyzerOpts.MrcGeometries = Geoms;
  const StaticConflictAnalyzer Analyzer(AnalyzerOpts);

  std::vector<AccuracyRow> Rows;
  bool AccuracyOk = true;
  for (const auto &W : makeCaseStudySuite()) {
    BinaryImage Image = W->makeBinary();
    ProgramStructure Structure(Image);
    for (WorkloadVariant Variant :
         {WorkloadVariant::Original, WorkloadVariant::Optimized}) {
      StaticAccessModel Model = W->accessModel(Variant);
      if (Model.empty())
        continue;

      Clock::time_point Start = Clock::now();
      StaticAnalysisResult Static = Analyzer.analyze(Model, &Structure);
      AccuracyRow Row;
      Row.AnalyzeSeconds = secondsSince(Start);
      Row.Name = W->name() + std::string(Variant == WorkloadVariant::Original
                                             ? "-orig"
                                             : "-opt");
      Row.Loops = Static.Loops.size();
      if (!Static.ReuseEstimated) {
        std::cerr << "error: " << Row.Name << " has no reuse estimate\n";
        return 1;
      }

      // Ground truth: exact program curve via MrcEngine, per-loop
      // curves via the shared global stack-distance attribution.
      Trace Recorded;
      W->run(Variant, &Recorded);
      const Trace T = canonicalizeTrace(Recorded);
      const MissRatioCurve Exact = MrcEngine::compute(T, MrcOptions{});
      const MeasuredCurves Curves =
          ConsistencyChecker::measuredCurvesFromTrace(
              T, &Structure, AnalyzerOpts.Geometry);

      double ProgramSum = 0.0;
      for (const PredictedMrcPoint &Point : Static.ProgramMrc) {
        const double Error = std::abs(
            Point.MissRatio - Exact.modelMissRatioAt(Point.Geometry));
        Row.ProgramMaxError = std::max(Row.ProgramMaxError, Error);
        ProgramSum += Error;
      }
      if (!Static.ProgramMrc.empty())
        Row.ProgramMeanError = ProgramSum / Static.ProgramMrc.size();

      for (const LoopPrediction &Loop : Static.Loops) {
        const auto It = Curves.PerLoop.find(Loop.Location);
        if (It == Curves.PerLoop.end() || It->second.TotalRefs == 0)
          continue;
        const bool Significant =
            static_cast<double>(It->second.TotalRefs) >=
            0.05 * static_cast<double>(T.size());
        for (const PredictedMrcPoint &Point : Loop.PredictedMrc) {
          const double Error =
              std::abs(Point.MissRatio -
                       It->second.modelMissRatioAt(Point.Geometry));
          Row.PerLoopMaxError = std::max(Row.PerLoopMaxError, Error);
          if (Significant)
            Row.SignificantLoopMaxError =
                std::max(Row.SignificantLoopMaxError, Error);
        }
      }

      if (Row.ProgramMaxError > MaxErrorBound ||
          Row.SignificantLoopMaxError > MaxErrorBound)
        AccuracyOk = false;
      Rows.push_back(Row);
    }
  }

  if (!JsonOnly) {
    std::cout << "=== Analytic MRC accuracy (" << Geoms.size()
              << " geometries, bound " << MaxErrorBound << ") ===\n\n";
    TextTable Table({"model", "loops", "analyze (s)", "program max err",
                     "program mean err", "signif loop max", "any loop max"});
    for (const AccuracyRow &Row : Rows)
      Table.addRow({Row.Name, std::to_string(Row.Loops),
                    std::to_string(Row.AnalyzeSeconds),
                    std::to_string(Row.ProgramMaxError),
                    std::to_string(Row.ProgramMeanError),
                    std::to_string(Row.SignificantLoopMaxError),
                    std::to_string(Row.PerLoopMaxError)});
    std::cout << Table.render() << "\naccuracy gate: "
              << (AccuracyOk ? "pass" : "FAIL") << "\n\n";
  }

  //===------------------------------------------------------------------===//
  // 2. Sweep screening payoff: whole groups skipped across a sweep.
  //===------------------------------------------------------------------===//

  BatchMatrix Matrix;
  Matrix.Workloads = defaultBatchWorkloads();
  Matrix.Variants = {WorkloadVariant::Optimized};
  Matrix.Periods = {606, 1212};
  Matrix.Repeats = 2;
  std::vector<JobSpec> Jobs = expandMatrix(Matrix);

  BatchExecOptions Exec;
  Exec.Workers = 4;
  Exec.StaticScreen = true;
  SharedBatchStats Stats;
  Clock::time_point Start = Clock::now();
  std::vector<JobOutcome> Outcomes =
      runJobsShared(Jobs, Exec, 0, nullptr, nullptr, &Stats);
  const double ScreenSecs = secondsSince(Start);
  for (const JobOutcome &Outcome : Outcomes)
    if (!Outcome.ok()) {
      std::cerr << "error: job " << Outcome.Job.key() << " failed: "
                << Outcome.Error << "\n";
      return 1;
    }
  const bool ScreenOk = Stats.StaticScreenedGroups >= 1;

  if (!JsonOnly) {
    std::cout << "=== Sweep screening (" << Jobs.size() << " jobs, "
              << Exec.Workers << " workers) ===\n\n"
              << "wall time: " << ScreenSecs << " s; skipped "
              << Stats.StaticSkipped << " job(s), "
              << Stats.StaticScreenedGroups
              << " whole group(s) never traced, "
              << Stats.StaticScreenRefusals << " refusal(s)\n"
              << "screening gate (>=1 full group): "
              << (ScreenOk ? "pass" : "FAIL") << "\n";
  }

  {
    std::ofstream Json("BENCH_staticmrc.json");
    Json.precision(6);
    Json << std::fixed << "{\n"
         << "  \"bench\": \"staticmrc\",\n"
         << "  \"geometries\": " << Geoms.size() << ",\n"
         << "  \"max_error_bound\": " << MaxErrorBound << ",\n"
         << "  \"accuracy_pass\": " << (AccuracyOk ? "true" : "false")
         << ",\n"
         << "  \"screen_jobs\": " << Jobs.size() << ",\n"
         << "  \"screen_seconds\": " << ScreenSecs << ",\n"
         << "  \"screen_jobs_skipped\": " << Stats.StaticSkipped << ",\n"
         << "  \"screen_groups_skipped\": " << Stats.StaticScreenedGroups
         << ",\n"
         << "  \"screen_refusals\": " << Stats.StaticScreenRefusals << ",\n"
         << "  \"screen_pass\": " << (ScreenOk ? "true" : "false") << ",\n"
         << "  \"per_model\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I) {
      const AccuracyRow &Row = Rows[I];
      Json << "    {\"model\": \"" << Row.Name << "\", \"loops\": "
           << Row.Loops << ", \"analyze_seconds\": " << Row.AnalyzeSeconds
           << ", \"program_max_error\": " << Row.ProgramMaxError
           << ", \"program_mean_error\": " << Row.ProgramMeanError
           << ", \"significant_loop_max_error\": "
           << Row.SignificantLoopMaxError
           << ", \"per_loop_max_error\": " << Row.PerLoopMaxError << "}"
           << (I + 1 < Rows.size() ? "," : "") << "\n";
    }
    Json << "  ]\n}\n";
  }

  if (Gate && (!AccuracyOk || !ScreenOk)) {
    std::cerr << "error: static MRC gate failed (accuracy "
              << (AccuracyOk ? "pass" : "fail") << ", screening "
              << (ScreenOk ? "pass" : "fail") << ")\n";
    return 1;
  }
  return 0;
}
