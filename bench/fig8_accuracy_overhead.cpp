//===- bench/fig8_accuracy_overhead.cpp - Paper Fig. 8 reproduction -------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Reproduces paper Fig. 8: the classifier's F1-score and CCProf's runtime
// overhead across sampling periods. Protocol (Sec. 5.2): 16 labeled
// loops — 8 with conflicts, 8 without — ground truth from the exact
// simulator pipeline; at each period the contribution factor is
// re-measured from sampled RCDs, the simple logistic regression is
// 8-fold cross-validated, and the overhead is modeled from the measured
// plain runtime plus the per-sample cost.
//
// Expected shape: F1 is 1 at high frequency (the paper reaches F1 = 1 at
// mean period 171) and decays as the period grows, while overhead moves
// the other way (2.9x at period 1212 in the paper).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/CrossValidation.h"
#include "pmu/OverheadModel.h"
#include "support/Table.h"

#include <iostream>
#include <memory>

using namespace ccprof;
using namespace ccprof::bench;

namespace {

struct LoopCase {
  std::unique_ptr<Workload> W;
  WorkloadVariant Variant;
  bool HasConflicts;
};

std::vector<LoopCase> buildSixteenLoops() {
  std::vector<LoopCase> Cases;
  // Eight conflicting loops: the six case studies, the symmetrization
  // example, and NW's second tile-copy loop counts through its own
  // application run (we reuse NW at a second size).
  for (auto &W : makeCaseStudySuite())
    Cases.push_back({std::move(W), WorkloadVariant::Original, true});
  Cases.push_back({makeSymmetrization(), WorkloadVariant::Original, true});
  Cases.push_back(
      {makeWorkloadByName("ADI"), WorkloadVariant::Original, true});

  // Eight clean loops: three padded case studies and five conflict-free
  // Rodinia kernels with sufficient miss volume.
  Cases.push_back(
      {makeWorkloadByName("NW"), WorkloadVariant::Optimized, false});
  Cases.push_back(
      {makeWorkloadByName("ADI"), WorkloadVariant::Optimized, false});
  Cases.push_back(
      {makeWorkloadByName("MKL-FFT"), WorkloadVariant::Optimized, false});
  for (const char *Name : {"cfd", "bfs", "hotspot", "lud", "nn"})
    Cases.push_back(
        {makeWorkloadByName(Name), WorkloadVariant::Original, false});
  return Cases;
}

} // namespace

int main() {
  std::cout << "=== Figure 8: F1-score and overhead vs sampling period "
               "===\n\n";

  std::vector<LoopCase> Cases = buildSixteenLoops();
  std::cout << "training set: " << Cases.size() << " loops (8 conflicting, "
            << Cases.size() - 8 << " clean), 8-fold cross-validation\n\n";

  const std::vector<uint64_t> Periods = {1,   50,   171,  400,
                                         800, 1212, 2400, 4800};

  // Trace each case once; resample per period. The image is heap-owned
  // because the ProgramStructure keeps a pointer into it.
  struct PreparedCase {
    Trace T;
    std::unique_ptr<BinaryImage> Image;
    std::unique_ptr<ProgramStructure> S;
    std::string HotLocation;
    bool Label;
  };
  std::vector<PreparedCase> Prepared;
  Prepared.reserve(Cases.size());
  for (LoopCase &Case : Cases) {
    PreparedCase P;
    P.T = traceWorkload(*Case.W, Case.Variant);
    P.Image = std::make_unique<BinaryImage>(Case.W->makeBinary());
    P.S = std::make_unique<ProgramStructure>(*P.Image);
    P.HotLocation = Case.W->hotLoopLocation();
    P.Label = Case.HasConflicts;
    Prepared.push_back(std::move(P));
  }

  // Overhead model inputs from the six case studies: measured plain
  // runtime and simulated L1 miss count.
  OverheadConstants Constants = calibrateOverheadConstants();
  std::vector<double> PlainSeconds;
  std::vector<uint64_t> MissCounts;
  for (const auto &W : makeCaseStudySuite()) {
    PlainSeconds.push_back(timeWorkload(*W, WorkloadVariant::Original));
    Trace T = traceWorkload(*W, WorkloadVariant::Original);
    MissCounts.push_back(
        collectL1MissStream(T, paperL1Geometry()).size());
  }

  TextTable Table(
      {"mean period", "F1-score", "avg overhead", "note"});
  for (uint64_t Period : Periods) {
    std::vector<double> X;
    std::vector<uint8_t> Y;
    for (PreparedCase &Case : Prepared) {
      ProfileOptions Options;
      Options.Sampling.Kind = SamplingKind::Bursty;
      Options.Sampling.MeanPeriod = Period;
      Profiler P(Options);
      ProfileResult Result = P.profile(Case.T, *Case.S);
      const LoopConflictReport *Hot =
          Result.byLocation(Case.HotLocation);
      if (!Hot)
        Hot = Result.hottest();
      X.push_back(Hot ? Hot->ContributionFactor : 0.0);
      Y.push_back(Case.Label ? 1 : 0);
    }
    CrossValidationOptions CvOptions;
    CvOptions.Folds = 8;
    double F1 = crossValidate(X, Y, CvOptions).f1();

    double OverheadSum = 0.0;
    for (size_t I = 0; I < PlainSeconds.size(); ++I)
      OverheadSum += profilingOverheadFactor(
          PlainSeconds[I], MissCounts[I] / Period, Constants);
    double Overhead = OverheadSum / static_cast<double>(PlainSeconds.size());

    std::string Note;
    if (Period == 171)
      Note = "paper: F1 = 1 here";
    else if (Period == 1212)
      Note = "paper: F1 = 0.83, 2.9x here";
    else if (Period == 1)
      Note = "exact (simulator-grade)";
    Table.addRow({std::to_string(Period), fmt::fixed(F1, 3),
                  fmt::times(Overhead), Note});
  }
  std::cout << Table.render() << '\n';
  std::cout << "calibrated costs: sample = "
            << fmt::fixed(Constants.SampleCostNs, 0)
            << "ns, traced reference = "
            << fmt::fixed(Constants.TraceSimCostNs, 0) << "ns\n"
            << "shape check: accuracy is perfect at high frequency and "
               "dips as the period grows\n(HimenoBMT's short conflict "
               "periods are the first casualty), while overhead\nfalls "
               "from simulator-like at period 1 to a few percent at "
               "coarse periods.\n";
  return 0;
}
