//===- bench/mrc_throughput.cpp - Single-pass MRC vs N simulations --------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Measures the payoff of the single-pass miss-ratio curve engine: one
// MrcEngine pass (exact, and SHARDS-sampled) against the per-config
// alternative it replaces — one full Cache simulation per (size,
// assoc) sweep point — on the six case-study workloads plus the Fig. 2
// symmetrization example. Alongside wall-clock, it reports the
// SHARDS-vs-exact max absolute curve error at every sweep point (both
// curves read through the binomial model; the per-set/model gap is the
// conflict signal, not sampling error — see DESIGN.md §10).
//
// Emits machine-readable BENCH_mrc.json in the working directory —
// one row per workload in every mode, so the committed trajectory
// always covers the full case-study set. `--json` suppresses the
// human-readable table (the JSON file is always written); `--smoke`
// drops to a single timing repeat for CI sanity checks (it used to
// drop six of the seven workloads, which left a one-row BENCH_mrc.json
// behind whenever a smoke run was the last writer); `--gate` exits
// nonzero if the sampled pass's speedup over the per-config sweep
// drops below 2.0x on any workload — the min across all rows — or the
// SHARDS curve error exceeds the documented 0.05 bound.
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"
#include "sim/MrcEngine.h"
#include "support/Table.h"
#include "trace/Canonicalize.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

using namespace ccprof;

namespace {

using Clock = std::chrono::steady_clock;

constexpr double ShardsRate = 0.25;
constexpr double ShardsBound = 0.05;
constexpr double SpeedupFloor = 2.0;
/// Timing repeats per measurement; --smoke drops this to 1 (the
/// workload set never shrinks — every mode emits all rows).
int Repeats = 3;

/// The config sweep an MRC pass replaces, at the paper's line size and
/// associativity. Curve resolution is the whole point of an MRC: the
/// per-config baseline pays one full simulation per point, the engine
/// answers every point from the same single pass, so the sweep here is
/// a realistic ten-point curve rather than the minimal batch default.
std::vector<CacheGeometry> sweepGeometries() {
  std::vector<CacheGeometry> Sweep;
  for (uint64_t SizeKb : {4, 8, 16, 24, 32, 48, 64, 96, 128, 256})
    Sweep.emplace_back(SizeKb * 1024, 64, 8);
  return Sweep;
}

struct WorkloadResult {
  std::string Name;
  uint64_t Refs = 0;
  double SimSeconds = 0.0;    ///< All sweep-point simulations, summed.
  double ExactSeconds = 0.0;  ///< One exact MRC pass.
  double ShardsSeconds = 0.0; ///< One SHARDS pass at ShardsRate.
  double MaxAbsError = 0.0;   ///< SHARDS vs exact, model readout.

  double exactSpeedup() const { return SimSeconds / ExactSeconds; }
  double shardsSpeedup() const { return SimSeconds / ShardsSeconds; }
};

/// Min-of-repeats wall clock of \p Fn (min filters scheduler noise).
template <typename FnT> double timeMin(FnT &&Fn) {
  double Best = 1e300;
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    const Clock::time_point Start = Clock::now();
    Fn();
    Best = std::min(
        Best, std::chrono::duration<double>(Clock::now() - Start).count());
  }
  return Best;
}

WorkloadResult measure(const std::string &Name,
                       const std::vector<CacheGeometry> &Sweep) {
  std::unique_ptr<Workload> W = makeWorkloadByName(Name);
  Trace Recorded;
  W->run(WorkloadVariant::Original, &Recorded);
  const Trace T = canonicalizeTrace(Recorded);

  WorkloadResult Result;
  Result.Name = Name;
  Result.Refs = T.size();

  // The baseline this engine replaces: one full replay per sweep point.
  // The sink defeats dead-code elimination across repeats.
  volatile double Sink = 0.0;
  Result.SimSeconds = timeMin([&] {
    for (const CacheGeometry &G : Sweep) {
      Cache Sim(G, ReplacementKind::Lru);
      for (const MemoryRecord &R : T.records())
        Sim.access(R.Addr, R.IsWrite);
      Sink = Sink + Sim.stats().missRatio();
    }
  });

  MrcOptions ExactOpts;
  Result.ExactSeconds = timeMin([&] {
    const MissRatioCurve Curve = MrcEngine::compute(T, ExactOpts);
    Sink = Sink + Curve.missRatioAtLines(512);
  });

  MrcOptions ShardsOpts;
  ShardsOpts.Sampled = true;
  ShardsOpts.SampleRate = ShardsRate;
  Result.ShardsSeconds = timeMin([&] {
    const MissRatioCurve Curve = MrcEngine::compute(T, ShardsOpts);
    Sink = Sink + Curve.missRatioAtLines(512);
  });

  const MissRatioCurve Exact = MrcEngine::compute(T, ExactOpts);
  const MissRatioCurve Shards = MrcEngine::compute(T, ShardsOpts);
  for (const CacheGeometry &G : Sweep)
    Result.MaxAbsError =
        std::max(Result.MaxAbsError, std::fabs(Shards.modelMissRatioAt(G) -
                                               Exact.modelMissRatioAt(G)));
  return Result;
}

std::string fixed(double Value, int Digits) {
  return fmt::fixed(Value, Digits);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = false, Gate = false, Smoke = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(Argv[I], "--gate") == 0)
      Gate = true;
    else if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;
    else {
      std::cerr << "usage: mrc_throughput [--json] [--gate] [--smoke]\n";
      return 2;
    }
  }

  if (Smoke)
    Repeats = 1;

  const std::vector<CacheGeometry> Sweep = sweepGeometries();
  const std::vector<std::string> Names = {"NW",     "MKL-FFT", "ADI",
                                          "Tiny-DNN", "Kripke",
                                          "HimenoBMT", "Symmetrization"};

  std::vector<WorkloadResult> Results;
  for (const std::string &Name : Names)
    Results.push_back(measure(Name, Sweep));

  double MaxError = 0.0, MinShardsSpeedup = 1e300, MinExactSpeedup = 1e300;
  for (const WorkloadResult &R : Results) {
    MaxError = std::max(MaxError, R.MaxAbsError);
    MinShardsSpeedup = std::min(MinShardsSpeedup, R.shardsSpeedup());
    MinExactSpeedup = std::min(MinExactSpeedup, R.exactSpeedup());
  }

  {
    std::ofstream Out("BENCH_mrc.json", std::ios::trunc);
    Out << "{\n  \"bench\": \"mrc_throughput\",\n  \"smoke\": "
        << (Smoke ? "true" : "false") << ",\n  \"sweep_points\": "
        << Sweep.size() << ",\n  \"shards_rate\": " << fixed(ShardsRate, 4)
        << ",\n  \"workloads\": [\n";
    for (size_t I = 0; I < Results.size(); ++I) {
      const WorkloadResult &R = Results[I];
      Out << "    {\"name\": \"" << R.Name << "\", \"refs\": " << R.Refs
          << ", \"sim_seconds\": " << fixed(R.SimSeconds, 6)
          << ", \"exact_mrc_seconds\": " << fixed(R.ExactSeconds, 6)
          << ", \"shards_mrc_seconds\": " << fixed(R.ShardsSeconds, 6)
          << ", \"exact_speedup\": " << fixed(R.exactSpeedup(), 3)
          << ", \"shards_speedup\": " << fixed(R.shardsSpeedup(), 3)
          << ", \"shards_max_abs_err\": " << fixed(R.MaxAbsError, 6) << "}"
          << (I + 1 < Results.size() ? "," : "") << '\n';
    }
    Out << "  ],\n  \"min_exact_speedup\": " << fixed(MinExactSpeedup, 3)
        << ",\n  \"min_shards_speedup\": " << fixed(MinShardsSpeedup, 3)
        << ",\n  \"max_abs_err\": " << fixed(MaxError, 6)
        << ",\n  \"gate_speedup_floor\": " << fixed(SpeedupFloor, 2)
        << ",\n  \"gate_error_bound\": " << fixed(ShardsBound, 2) << "\n}\n";
  }

  if (!Json) {
    TextTable Table({"workload", "refs", "sim(s)", "exact(s)", "shards(s)",
                     "exact x", "shards x", "max err"});
    for (const WorkloadResult &R : Results)
      Table.addRow({R.Name, std::to_string(R.Refs), fixed(R.SimSeconds, 4),
                    fixed(R.ExactSeconds, 4), fixed(R.ShardsSeconds, 4),
                    fixed(R.exactSpeedup(), 2), fixed(R.shardsSpeedup(), 2),
                    fixed(R.MaxAbsError, 4)});
    std::cout << "mrc_throughput: one MRC pass vs " << Sweep.size()
              << " per-config L1 simulations (SHARDS rate "
              << fixed(ShardsRate, 2) << ")\n"
              << Table.render()
              << "min shards speedup " << fixed(MinShardsSpeedup, 2)
              << "x, max abs err " << fixed(MaxError, 4) << '\n';
  }

  if (Gate) {
    bool Failed = false;
    if (MinShardsSpeedup < SpeedupFloor) {
      std::cerr << "GATE FAIL: shards speedup " << fixed(MinShardsSpeedup, 2)
                << "x below the " << fixed(SpeedupFloor, 1) << "x floor\n";
      Failed = true;
    }
    if (MaxError > ShardsBound) {
      std::cerr << "GATE FAIL: shards curve error " << fixed(MaxError, 4)
                << " above the " << fixed(ShardsBound, 2) << " bound\n";
      Failed = true;
    }
    if (Failed)
      return 1;
    std::cout << "gate ok: shards speedup >= " << fixed(SpeedupFloor, 1)
              << "x, error <= " << fixed(ShardsBound, 2) << '\n';
  }
  return 0;
}
