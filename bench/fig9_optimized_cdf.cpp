//===- bench/fig9_optimized_cdf.cpp - Paper Fig. 9 reproduction -----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Reproduces paper Fig. 9: CCProf re-run on each optimized case study.
// Before the fix, the hot loop's RCD CDF rises steeply (heavy short-RCD
// mass); after padding / loop reordering, short RCDs account for only a
// small share of the L1 misses — the evidence the paper uses to confirm
// its own classification.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Table.h"

#include <iostream>

using namespace ccprof;
using namespace ccprof::bench;

int main() {
  std::cout << "=== Figure 9: RCD CDF before vs after optimization ===\n"
            << "(exact profiles of the hot loop; cf = share of misses "
               "with RCD < 8)\n\n";

  const std::vector<uint64_t> CdfPoints = {1, 2, 4, 8, 16, 32, 64};
  std::vector<std::string> Header = {"application", "variant", "verdict",
                                     "cf(RCD<8)"};
  for (uint64_t Point : CdfPoints)
    Header.push_back("<=" + std::to_string(Point));
  TextTable Table(Header);

  auto Suite = makeCaseStudySuite();
  Suite.push_back(makeSymmetrization());
  for (const auto &W : Suite) {
    double CfBefore = 0.0, CfAfter = 0.0;
    for (WorkloadVariant Variant :
         {WorkloadVariant::Original, WorkloadVariant::Optimized}) {
      ProfileResult Result = profileWorkloadExact(*W, Variant);
      const LoopConflictReport *Hot =
          Result.byLocation(W->hotLoopLocation());
      if (!Hot)
        Hot = Result.hottest();
      std::vector<std::string> Row = {
          W->name(),
          Variant == WorkloadVariant::Original ? "original" : "optimized"};
      if (!Hot) {
        Row.insert(Row.end(), CdfPoints.size() + 2, "-");
      } else {
        Row.push_back(Hot->ConflictPredicted ? "CONFLICT" : "clean");
        Row.push_back(fmt::percent(Hot->ContributionFactor));
        for (uint64_t Point : CdfPoints)
          Row.push_back(fmt::percent(Hot->Rcd.cdfAt(Point), 0));
        (Variant == WorkloadVariant::Original ? CfBefore : CfAfter) =
            Hot->ContributionFactor;
      }
      Table.addRow(Row);
    }
    (void)CfBefore;
    (void)CfAfter;
  }
  std::cout << Table.render() << '\n';

  std::cout << "Paper shape check: every original build carries heavy "
               "short-RCD mass and is flagged; every optimized build's "
               "short-RCD share collapses and is classified clean.\n";
  return 0;
}
