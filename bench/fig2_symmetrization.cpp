//===- bench/fig2_symmetrization.cpp - Paper Fig. 2 reproduction ----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Reproduces paper Sec. 2.1 / Fig. 2: symmetrization of a 128x128 double
// matrix. The transposed access strides by the 1KiB row, confining each
// column walk to four of the 64 L1 sets; a 64-byte row pad spreads the
// walk over every set. The paper reports up to 91.4% fewer L2 misses
// after padding.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/PaddingAdvisor.h"
#include "support/Table.h"
#include "workloads/Symmetrization.h"

#include <iostream>

using namespace ccprof;
using namespace ccprof::bench;

int main() {
  std::cout << "=== Figure 2: symmetrization, cache-set mapping and "
               "padding ===\n\n";

  SymmetrizationWorkload W;
  CacheGeometry L1 = paperL1Geometry();

  // Fig. 2-b/c: the set mapping of a column walk before and after the
  // 64-byte pad.
  uint64_t RowBytes = W.dimension() * sizeof(double);
  std::cout << "matrix 128x128 doubles, row = " << RowBytes << "B; L1 "
            << L1.describe() << "\n";
  std::cout << "column walk touches "
            << setsTouchedByColumnSweep(RowBytes, W.dimension(), L1)
            << "/64 sets unpadded, "
            << setsTouchedByColumnSweep(RowBytes + 64, W.dimension(), L1)
            << "/64 sets with a 64B row pad\n\n";

  // Miss counts on the Broadwell hierarchy, original vs padded.
  TextTable Table({"variant", "L1 misses", "L2 misses", "LLC misses"});
  HierarchyMisses Before, After;
  for (WorkloadVariant Variant :
       {WorkloadVariant::Original, WorkloadVariant::Optimized}) {
    Trace T = traceWorkload(W, Variant);
    HierarchyMisses Misses = simulateHierarchy(T, broadwellConfig());
    Table.addRow({Variant == WorkloadVariant::Original ? "original"
                                                       : "padded (+64B/row)",
                  fmt::grouped(Misses.L1), fmt::grouped(Misses.L2),
                  fmt::grouped(Misses.Llc)});
    (Variant == WorkloadVariant::Original ? Before : After) = Misses;
  }
  std::cout << Table.render() << '\n';

  std::cout << "L1 miss reduction:       "
            << fmt::percent(reductionPercent(Before.L1, After.L1) / 100.0)
            << '\n'
            << "L2 traffic reduction:    "
            << fmt::percent(
                   reductionPercent(Before.L2Accesses, After.L2Accesses) /
                   100.0)
            << "   (paper: padding cuts L2-level misses by up to 91.4%;\n"
               "                                  our 128KiB matrix fits "
               "the simulated 256KiB L2, so the\n"
               "                                  conflict shows up as L2 "
               "*traffic* — see EXPERIMENTS.md)\n";

  // CCProf's view: the kernel loop before and after.
  ProfileResult Orig = profileWorkloadExact(W, WorkloadVariant::Original);
  ProfileResult Opt = profileWorkloadExact(W, WorkloadVariant::Optimized);
  const LoopConflictReport *HotOrig = Orig.hottest();
  const LoopConflictReport *HotOpt = Opt.hottest();
  if (HotOrig && HotOpt) {
    std::cout << "\nCCProf verdicts for the loop nest (" << HotOrig->Location
              << "):\n  original: cf(RCD<8) = "
              << fmt::percent(HotOrig->ContributionFactor) << " -> "
              << (HotOrig->ConflictPredicted ? "CONFLICT" : "clean")
              << "\n  padded:   cf(RCD<8) = "
              << fmt::percent(HotOpt->ContributionFactor) << " -> "
              << (HotOpt->ConflictPredicted ? "CONFLICT" : "clean") << '\n';
  }
  return 0;
}
