//===- bench/ext_l2_physical.cpp - L2-level RCD extension ------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Extension experiment (beyond the paper): RCD analysis at the
// physically-indexed L2 (the paper's footnote 1 declares this out of
// scope). The experiment profiles a 32KiB-strided walk — one that maps
// every access to a single L2 set under identity mapping — at L2 under
// the three page-mapping policies, and re-runs the ADI case study at L2.
//
// The point: above L1, both the victim sets and the verdict depend on
// how the OS happened to lay pages out. A page covers 64 of the 512 L2
// sets, so for an access at a fixed page offset only the frame's low
// bits reach the index: page scattering reshapes rather than repairs a
// super-page stride (identity pins it to one set; first-touch spreads
// it periodically over eight; shuffling randomizes the order), and it
// can *create* L2 conflicts for patterns that were regular virtually
// (ADI under a fragmented layout).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "cfg/SyntheticCodeGen.h"

#include "support/Table.h"
#include "workloads/Adi.h"

#include <iostream>

using namespace ccprof;
using namespace ccprof::bench;

namespace {

const char *policyName(PagePolicy Policy) {
  switch (Policy) {
  case PagePolicy::Identity:
    return "identity";
  case PagePolicy::FirstTouch:
    return "first-touch";
  case PagePolicy::Shuffled:
    return "shuffled";
  }
  return "?";
}

} // namespace

int main() {
  std::cout << "=== Extension: RCD analysis at the physically-indexed L2 "
               "===\n\n";

  const CacheGeometry L2(256 * 1024, 64, 8); // 512 sets, 32KiB stride

  // --- Synthetic 32KiB-strided walk ------------------------------------
  Trace Strided;
  SiteId Site = Strided.site("stride32k.cpp", 11, "walk");
  Strided.registerAllocation("arena[]",
                             reinterpret_cast<int *>(0x40000000),
                             128ull * L2.setStrideBytes() + 64);
  for (int Round = 0; Round < 20; ++Round)
    for (uint64_t Row = 0; Row < 128; ++Row)
      Strided.recordLoad(Site, 0x40000000 + Row * L2.setStrideBytes(), 4);

  // A loop-shaped binary for attribution.
  BinaryImage Image = [] {
    LoopSpec Walk;
    Walk.HeaderLine = 10;
    Walk.EndLine = 13;
    Walk.AccessLines = {11};
    FunctionSpec F;
    F.Name = "walk";
    F.StartLine = 5;
    F.EndLine = 20;
    F.Loops = {Walk};
    return lowerToBinary("stride32k.cpp", {F});
  }();
  ProgramStructure Structure(Image);

  std::cout << "32KiB-strided walk (128 rows, 20 sweeps) profiled at L2 "
               "(512 sets):\n\n";
  TextTable Table({"page mapping", "L2 events", "#sets", "cf(RCD<64)",
                   "verdict"});
  for (PagePolicy Policy : {PagePolicy::Identity, PagePolicy::FirstTouch,
                            PagePolicy::Shuffled}) {
    ProfileOptions Options;
    Options.Level = ProfileLevel::L2;
    Options.L2 = L2;
    Options.Mapping = Policy;
    // Scale the short-RCD threshold with the set count: the paper's
    // T = 8 is numSets/8 of its 64-set L1.
    Options.RcdThreshold = L2.numSets() / 8;
    Profiler P(Options);
    ProfileResult Result = P.profileExact(Strided, Structure);
    const LoopConflictReport *Hot = Result.hottest();
    Table.addRow({policyName(Policy), fmt::grouped(Result.L1Misses),
                  Hot ? std::to_string(Hot->SetsUtilized) : "-",
                  Hot ? fmt::percent(Hot->ContributionFactor) : "-",
                  Hot ? (Hot->ConflictPredicted ? "CONFLICT" : "clean")
                      : "-"});
  }
  std::cout << Table.render() << '\n';

  // --- ADI at L2 --------------------------------------------------------
  std::cout << "ADI (4KiB rows == exactly one page) profiled at L2 under "
               "each mapping:\n\n";
  AdiWorkload Adi;
  BinaryImage AdiImage = Adi.makeBinary();
  ProgramStructure AdiStructure(AdiImage);
  TextTable AdiTable({"variant", "page mapping", "L2 events", "#sets",
                      "cf(RCD<64)", "verdict"});
  for (WorkloadVariant Variant :
       {WorkloadVariant::Original, WorkloadVariant::Optimized}) {
    Trace AdiTrace = traceWorkload(Adi, Variant);
    for (PagePolicy Policy : {PagePolicy::Identity, PagePolicy::FirstTouch,
                              PagePolicy::Shuffled}) {
      ProfileOptions Options;
      Options.Level = ProfileLevel::L2;
      Options.L2 = L2;
      Options.Mapping = Policy;
      Options.RcdThreshold = L2.numSets() / 8;
      Profiler P(Options);
      ProfileResult Result = P.profileExact(AdiTrace, AdiStructure);
      const LoopConflictReport *Hot =
          Result.byLocation(Adi.hotLoopLocation());
      if (!Hot)
        Hot = Result.hottest();
      AdiTable.addRow(
          {Variant == WorkloadVariant::Original ? "original" : "padded",
           policyName(Policy), fmt::grouped(Result.L1Misses),
           Hot ? std::to_string(Hot->SetsUtilized) : "-",
           Hot ? fmt::percent(Hot->ContributionFactor) : "-",
           Hot ? (Hot->ConflictPredicted ? "CONFLICT" : "clean") : "-"});
    }
  }
  std::cout << AdiTable.render() << '\n';

  std::cout
      << "Takeaways: (1) ADI's page-sized row stride conflicts at L2 "
         "under every mapping, and\nthe pad that fixes L1 helps L2 — "
         "consistent with the paper's measured L2 miss\nreductions "
         "(Table 3). (2) For the synthetic walk, *which* sets are "
         "victims and how\nhard they are hit depends entirely on the "
         "physical layout: attribution above L1\nneeds the real page "
         "mapping, which is why the paper scopes its measurement to\nthe "
         "virtually-indexed L1 (footnote 1).\n";
  return 0;
}
