//===- bench/fig3456_rcd_concepts.cpp - Paper Figs. 3-6 walkthrough -------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regenerates the concept figures of paper Sec. 3 on their own example
// sequences: the miss-per-set histogram (Fig. 3), the loop-phase
// locality pattern (Fig. 4), the Re-Conflict Distance and its
// distribution (Fig. 5), and the conflict period against the sampling
// period (Fig. 6).
//
//===----------------------------------------------------------------------===//

#include "core/RcdAnalyzer.h"
#include "pmu/PebsSampler.h"
#include "sim/MachineConfig.h"
#include "support/Table.h"

#include <iostream>
#include <vector>

using namespace ccprof;

namespace {

/// The miss sequence of paper Figs. 3/5 (sets of successive misses).
const std::vector<uint64_t> PaperSequence = {1, 1, 2, 1, 3, 2, 1, 0, 3, 1};

void figure3() {
  std::cout << "--- Figure 3: miss sequence and per-set histogram ---\n";
  std::cout << "sequence:";
  for (uint64_t Set : PaperSequence)
    std::cout << " S" << Set;
  std::cout << '\n';

  RcdProfile P(4);
  for (uint64_t Set : PaperSequence)
    P.addMiss(Set);
  TextTable Table({"set", "misses"});
  for (uint64_t Set = 0; Set < 4; ++Set)
    Table.addRow({"S" + std::to_string(Set),
                  std::to_string(P.missesOnSet(Set))});
  std::cout << Table.render();
  std::cout << "set S1 absorbs " << P.missesOnSet(1)
            << " of 10 misses: imbalanced utilization -> victim set\n\n";
}

void figure4() {
  std::cout << "--- Figure 4: temporal locality of victim sets ---\n";
  // Iterations I1-I3 conflict on S1, I4-I5 on S2/S3, then S1 again.
  RcdProfile P(4);
  std::vector<uint64_t> Phased = {1, 1, 1, 2, 3, 2, 3, 1, 1, 1};
  for (uint64_t Set : Phased)
    P.addMiss(Set);
  std::cout << "phase 1 (I1-I3) hammers S1, phase 2 (I4-I5) S2/S3, "
               "phase 3 returns to S1\n"
            << "set S1 RCD histogram (1 = back-to-back conflicts):\n"
            << P.rcdOfSet(1).toAsciiChart(6) << '\n';
}

void figure5() {
  std::cout << "--- Figure 5: Re-Conflict Distance of set S1 ---\n";
  RcdProfile P(4);
  for (uint64_t Set : PaperSequence)
    P.addMiss(Set);
  std::cout << "RCD observations of S1 over the Fig. 3 sequence:\n"
            << P.rcdOfSet(1).toAsciiChart(6);
  std::cout << "distribution skewed toward 1-3 (" << P.rcdOfSet(1).total()
            << " observations, mean "
            << fmt::fixed(P.rcdOfSet(1).meanKey(), 2)
            << ") -> S1 is a victim of imbalanced utilization\n\n";
}

void figure6() {
  std::cout << "--- Figure 6: conflict period vs sampling period ---\n";
  // A long stable phase (constant RCD) followed by a phase change.
  RcdProfile P(4);
  for (int Round = 0; Round < 12; ++Round) {
    P.addMiss(1);
    P.addMiss(2);
  }
  for (int Round = 0; Round < 6; ++Round)
    P.addMiss(3);
  std::cout << "conflict-period run lengths (constant-RCD streaks):\n"
            << P.conflictPeriods().RunLengths.toAsciiChart(6);
  std::cout << "max CP = " << P.conflictPeriods().maxRunLength()
            << " misses; sampling catches a victim set only while the "
               "sampling period fits inside the CP\n\n";

  // Demonstrate: sample the same stable phase at two periods.
  std::vector<MissEvent> Stream;
  for (int Round = 0; Round < 4000; ++Round) {
    Stream.push_back(MissEvent{1, (Round % 2 == 0 ? 0u : 1u) * 64});
  }
  for (uint64_t Period : {4ull, 64ull}) {
    SamplingConfig Config;
    Config.Kind = SamplingKind::Bursty;
    Config.MeanPeriod = Period;
    Config.BurstLen = 8;
    PebsSampler Sampler(Config);
    auto Samples = Sampler.sampleStream(Stream);
    RcdProfile Approx(64);
    CacheGeometry G = paperL1Geometry();
    for (const PebsSample &S : Samples)
      Approx.addMiss(G.setIndexOf(S.Event.Addr));
    std::cout << "period " << Period << ": " << Samples.size()
              << " samples, approximated cf(RCD<8) = "
              << fmt::percent(Approx.contributionFactor(8)) << '\n';
  }
  std::cout << "(both periods see the stable two-set conflict; the "
               "denser one measures it more precisely)\n";
}

} // namespace

int main() {
  std::cout << "=== Figures 3-6: RCD concept walkthrough ===\n\n";
  figure3();
  figure4();
  figure5();
  figure6();
  return 0;
}
