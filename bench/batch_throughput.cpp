//===- bench/batch_throughput.cpp - Batch pipeline scaling ----------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Measures the batch-profiling pipeline's throughput (jobs/sec) over
// the built-in workload suite at --jobs 1, 2, 4, 8, plus the speedup
// relative to sequential execution. Each job is fully independent
// (own workload buffers, trace, simulator), so the scaling ceiling is
// the host's core count and memory bandwidth; on a single-core
// container the interesting result is that the thread pool adds no
// measurable overhead rather than any speedup. Also verifies, while
// it is at it, that every parallel width reproduces the sequential
// artifacts byte-for-byte.
//
//===----------------------------------------------------------------------===//

#include "pipeline/JobRunner.h"
#include "support/Table.h"

#include <chrono>
#include <iostream>
#include <sstream>
#include <vector>

using namespace ccprof;

namespace {

std::string serializeAll(const std::vector<JobOutcome> &Outcomes) {
  std::stringstream Stream;
  for (const JobOutcome &Outcome : Outcomes)
    if (Outcome.ok())
      Outcome.Artifact.writeTo(Stream);
  return Stream.str();
}

} // namespace

int main() {
  std::cout << "=== Batch pipeline throughput ===\n"
            << "(one sampled profile job per built-in workload; bursty "
               "sampling, mean period 1212)\n\n";

  BatchMatrix Matrix;
  Matrix.Workloads = defaultBatchWorkloads();
  std::vector<JobSpec> Jobs = expandMatrix(Matrix);

  // Warm-up pass: touch every workload once so first-run page faults
  // and lazy initialization do not bias the sequential measurement.
  runJobs(Jobs, 1);

  TextTable Table({"--jobs", "wall time (s)", "jobs/sec", "speedup vs 1",
                   "bytes == sequential"});
  double SequentialSecs = 0.0;
  std::string SequentialBytes;
  for (unsigned NumThreads : {1u, 2u, 4u, 8u}) {
    using Clock = std::chrono::steady_clock;
    Clock::time_point Start = Clock::now();
    std::vector<JobOutcome> Outcomes = runJobs(Jobs, NumThreads);
    double Secs = std::chrono::duration<double>(Clock::now() - Start).count();

    size_t Failed = 0;
    for (const JobOutcome &Outcome : Outcomes)
      Failed += !Outcome.ok();
    if (Failed != 0) {
      std::cerr << "error: " << Failed << " of " << Outcomes.size()
                << " jobs failed at --jobs " << NumThreads << "\n";
      return 1;
    }

    std::string Bytes = serializeAll(Outcomes);
    if (NumThreads == 1) {
      SequentialSecs = Secs;
      SequentialBytes = Bytes;
    }
    const bool Identical = Bytes == SequentialBytes;

    std::ostringstream Row[4];
    Row[0] << NumThreads;
    Row[1].precision(3);
    Row[1] << std::fixed << Secs;
    Row[2].precision(2);
    Row[2] << std::fixed << static_cast<double>(Jobs.size()) / Secs;
    Row[3].precision(2);
    Row[3] << std::fixed << SequentialSecs / Secs << "x";
    Table.addRow({Row[0].str(), Row[1].str(), Row[2].str(), Row[3].str(),
                  Identical ? "yes" : "NO"});
    if (!Identical) {
      std::cerr << "error: --jobs " << NumThreads
                << " artifacts differ from sequential output\n";
      return 1;
    }
  }

  std::cout << Table.render() << "\n"
            << Jobs.size() << " jobs per width; every width byte-identical "
            << "to sequential.\n";
  return 0;
}
