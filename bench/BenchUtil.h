//===- bench/BenchUtil.h - Shared benchmark-harness helpers ----*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: wall-clock
/// timing, the workload -> trace -> profile pipeline, and hierarchy
/// simulation of a trace on a machine config.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_BENCH_BENCHUTIL_H
#define CCPROF_BENCH_BENCHUTIL_H

#include "core/Profiler.h"
#include "sim/MachineConfig.h"
#include "workloads/Workload.h"

#include <chrono>
#include <cstdint>
#include <vector>

namespace ccprof::bench {

/// Minimum wall-clock seconds of \p Repeats uninstrumented runs of the
/// workload variant (min filters scheduler noise on a busy host).
inline double timeWorkload(const Workload &W, WorkloadVariant Variant,
                           int Repeats = 3) {
  using Clock = std::chrono::steady_clock;
  double Best = 1e300;
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    Clock::time_point Start = Clock::now();
    volatile double Sink = W.run(Variant, nullptr);
    (void)Sink;
    double Elapsed =
        std::chrono::duration<double>(Clock::now() - Start).count();
    if (Elapsed < Best)
      Best = Elapsed;
  }
  return Best;
}

/// Traces one variant and returns the trace.
inline Trace traceWorkload(const Workload &W, WorkloadVariant Variant) {
  Trace T;
  W.run(Variant, &T);
  return T;
}

/// Runs the full CCProf pipeline on a freshly recorded trace.
inline ProfileResult profileWorkload(const Workload &W,
                                     WorkloadVariant Variant,
                                     const ProfileOptions &Options) {
  Trace T = traceWorkload(W, Variant);
  BinaryImage Image = W.makeBinary();
  ProgramStructure S(Image);
  Profiler P(Options);
  return P.profile(T, S);
}

/// Exact (simulation-grade, every-miss) profile of one variant.
inline ProfileResult profileWorkloadExact(const Workload &W,
                                          WorkloadVariant Variant) {
  Trace T = traceWorkload(W, Variant);
  BinaryImage Image = W.makeBinary();
  ProgramStructure S(Image);
  Profiler P;
  return P.profileExact(T, S);
}

/// Per-level miss counts of a trace replayed through one machine's
/// cache hierarchy.
struct HierarchyMisses {
  uint64_t L1 = 0;
  uint64_t L2 = 0;
  uint64_t Llc = 0;
  uint64_t L2Accesses = 0; ///< Traffic reaching L2 (== L1 miss events).
};

inline HierarchyMisses simulateHierarchy(const Trace &T,
                                         const MachineConfig &Machine) {
  CacheHierarchy H = Machine.makeHierarchy();
  for (const MemoryRecord &Record : T.records())
    H.access(Record.Addr, Record.IsWrite);
  HierarchyMisses Misses;
  Misses.L1 = H.missesAt(0);
  Misses.L2 = H.missesAt(1);
  Misses.Llc = H.missesAt(2);
  Misses.L2Accesses = H.level(1).stats().Accesses;
  return Misses;
}

/// Percent reduction from \p Before to \p After (negative = regression).
inline double reductionPercent(uint64_t Before, uint64_t After) {
  if (Before == 0)
    return 0.0;
  return (static_cast<double>(Before) - static_cast<double>(After)) /
         static_cast<double>(Before) * 100.0;
}

} // namespace ccprof::bench

#endif // CCPROF_BENCH_BENCHUTIL_H
