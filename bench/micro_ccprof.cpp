//===- bench/micro_ccprof.cpp - Component microbenchmarks ------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks of the pipeline's building blocks.
// These are the costs behind the overhead model: the cache-model update
// (the dominant per-reference cost of the simulation pipeline), the
// sample-handler path, RCD bookkeeping, and the analyzer front-end.
//
//===----------------------------------------------------------------------===//

#include "cfg/SyntheticCodeGen.h"
#include "core/LogisticRegression.h"
#include "core/ProgramStructure.h"
#include "core/RcdAnalyzer.h"
#include "pmu/PebsSampler.h"
#include "sim/Cache.h"
#include "sim/MachineConfig.h"
#include "sim/MissClassifier.h"
#include "sim/ReuseDistance.h"
#include "support/Rng.h"

#include "benchmark/benchmark.h"

using namespace ccprof;

namespace {

void BM_CacheAccess(benchmark::State &State) {
  Cache L1(paperL1Geometry(),
           static_cast<ReplacementKind>(State.range(0)));
  Xoshiro256 Rng(42);
  std::vector<uint64_t> Addrs(4096);
  for (uint64_t &Addr : Addrs)
    Addr = Rng.next() & 0xfffff;
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(L1.access(Addrs[I++ & 4095]).Hit);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CacheAccess)
    ->Arg(static_cast<int>(ReplacementKind::Lru))
    ->Arg(static_cast<int>(ReplacementKind::Fifo))
    ->Arg(static_cast<int>(ReplacementKind::TreePlru))
    ->Arg(static_cast<int>(ReplacementKind::Random));

void BM_FullyAssociativeLru(benchmark::State &State) {
  FullyAssociativeLru Fa(512);
  Xoshiro256 Rng(43);
  std::vector<uint64_t> Lines(4096);
  for (uint64_t &Line : Lines)
    Line = Rng.nextBounded(2048);
  size_t I = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(Fa.access(Lines[I++ & 4095]));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_FullyAssociativeLru);

void BM_MissClassification(benchmark::State &State) {
  MissClassifier M(paperL1Geometry());
  Xoshiro256 Rng(44);
  std::vector<uint64_t> Addrs(4096);
  for (uint64_t &Addr : Addrs)
    Addr = Rng.next() & 0xfffff;
  size_t I = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(M.access(Addrs[I++ & 4095]));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_MissClassification);

void BM_RcdUpdate(benchmark::State &State) {
  RcdProfile Profile(64);
  Xoshiro256 Rng(45);
  std::vector<uint64_t> Sets(4096);
  for (uint64_t &Set : Sets)
    Set = Rng.nextBounded(64);
  size_t I = 0;
  for (auto _ : State) {
    Profile.addMiss(Sets[I++ & 4095]);
    benchmark::ClobberMemory();
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RcdUpdate);

void BM_SamplerEvent(benchmark::State &State) {
  SamplingConfig Config;
  Config.Kind = SamplingKind::Bursty;
  Config.MeanPeriod = 1212;
  PebsSampler Sampler(Config);
  for (auto _ : State)
    benchmark::DoNotOptimize(Sampler.onEvent());
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SamplerEvent);

void BM_ReuseDistance(benchmark::State &State) {
  ReuseDistanceAnalyzer Analyzer;
  Xoshiro256 Rng(46);
  std::vector<uint64_t> Lines(4096);
  for (uint64_t &Line : Lines)
    Line = Rng.nextBounded(4096);
  size_t I = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(Analyzer.access(Lines[I++ & 4095]));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ReuseDistance);

void BM_LogisticFit(benchmark::State &State) {
  std::vector<double> X;
  std::vector<uint8_t> Y;
  Xoshiro256 Rng(47);
  for (int I = 0; I < 16; ++I) {
    X.push_back(I < 8 ? 0.1 + 0.01 * Rng.nextDouble()
                      : 0.8 + 0.01 * Rng.nextDouble());
    Y.push_back(I < 8 ? 0 : 1);
  }
  for (auto _ : State) {
    SimpleLogisticRegression Model;
    benchmark::DoNotOptimize(Model.fit(X, Y));
  }
}
BENCHMARK(BM_LogisticFit);

void BM_BinaryAnalysis(benchmark::State &State) {
  // Lower and analyze a deep loop nest: the analyzer front-end cost.
  LoopSpec Leaf;
  Leaf.HeaderLine = 50;
  Leaf.EndLine = 52;
  Leaf.AccessLines = {51};
  LoopSpec Nest = Leaf;
  for (uint32_t Depth = 0; Depth < static_cast<uint32_t>(State.range(0));
       ++Depth) {
    LoopSpec Outer;
    Outer.HeaderLine = 48 - 2 * Depth;
    Outer.EndLine = 54 + 2 * Depth;
    Outer.Children = {Nest};
    Nest = Outer;
  }
  FunctionSpec F;
  F.Name = "deep";
  F.StartLine = 1;
  F.EndLine = 100;
  F.Loops = {Nest};
  BinaryImage Image = lowerToBinary("deep.cpp", {F});
  for (auto _ : State) {
    ProgramStructure S(Image);
    benchmark::DoNotOptimize(S.numLoops());
  }
}
BENCHMARK(BM_BinaryAnalysis)->Arg(4)->Arg(16);

} // namespace

BENCHMARK_MAIN();
