//===- tools/ccprof.cpp - Command-line driver ------------------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The command-line face of the library, standing in for the artifact's
// ccProf_run_and_analyze.sh workflow:
//
//   ccprof list
//   ccprof profile <workload> [--optimized] [--exact] [--period N]
//                  [--sampler bursty|jitter|fixed] [--threshold N]
//                  [--level l1|l2] [--mapping identity|firsttouch|shuffled]
//                  [--csv]
//   ccprof compare <workload> [profile options]
//   ccprof trace <workload> <file> [--optimized]
//   ccprof analyze <file> <workload> [profile options]
//   ccprof analyze <workload> [--optimized] [--threshold N] [--json]
//                  [--artifact FILE]         (static prediction, no trace)
//
// plus the batch-profiling pipeline over persistent artifacts:
//
//   ccprof batch <workloads|all> [--jobs N] [--out DIR] [--periods A,B]
//                [--levels l1,l2] [--mappings M,N] [--variants V,W]
//                [--repeats R] [--stamp] [profile options]
//   ccprof merge <artifact|dir...> [--out FILE]
//   ccprof diff <artifact-a> <artifact-b> [--tolerance X] [--check] [--json]
//   ccprof show <artifact|dir> [--json]
//   ccprof validate <artifact|dir...> [--clean-temps] [--temp-age SECS]
//
// and the ingest service (ccprofd):
//
//   ccprof serve [--store DIR] [--socket PATH] [--watch DIR] [--workers N]
//                [--queue N] [--poll-ms N] [--once] [--stats]
//   ccprof submit <files...> --socket PATH [--client NAME]
//
//===----------------------------------------------------------------------===//

#include "analysis/ConsistencyChecker.h"
#include "analysis/StaticConflictAnalyzer.h"
#include "core/Profiler.h"
#include "core/Report.h"
#include "pipeline/ArtifactStore.h"
#include "pipeline/Diff.h"
#include "pipeline/JobRunner.h"
#include "pipeline/Merge.h"
#include "service/Ccprofd.h"
#include "service/ServiceClient.h"
#include "support/Table.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

using namespace ccprof;

namespace {

void printUsage(std::ostream &Out) {
  Out << "usage: ccprof <command> [options]\n"
         "\n"
         "commands:\n"
         "  list                      list the built-in workloads\n"
         "  profile <workload>        run a workload and report conflicts\n"
         "  compare <workload>        profile original and optimized builds\n"
         "  trace <workload> <file>   record a memory trace to a file\n"
         "  analyze <file> <workload> profile a previously recorded trace\n"
         "  analyze <workload>        predict conflicts statically from the\n"
         "                            workload's access model (no trace, no\n"
         "                            simulation); --artifact FILE cross-"
         "checks\n"
         "                            the prediction against a measured "
         "profile\n"
         "  batch <workloads|all>     run a job matrix, write one artifact "
         "per job\n"
         "  merge <artifact|dir...>   aggregate artifacts of repeated runs\n"
         "  diff <a> <b>              compare two artifacts, flag "
         "regressions\n"
         "  show <artifact|dir>       render stored artifact reports\n"
         "  validate <artifact|dir..> check artifacts for corruption "
         "(checksums,\n"
         "                            truncation, interrupted saves)\n"
         "  serve                     run the ccprofd ingest service "
         "(socket +\n"
         "                            drop-directory ingestion, rolling "
         "aggregates,\n"
         "                            fleet regression alerts)\n"
         "  submit <files...>         upload .ccpa/.cctr files to a "
         "running daemon\n"
         "\n"
         "profile options:\n"
         "  --optimized               use the padded/reordered build\n"
         "  --exact                   capture every miss (simulator-grade)\n"
         "  --period N                mean sampling period (default 1212)\n"
         "  --sampler KIND            bursty | jitter | fixed\n"
         "  --threshold N             short-RCD threshold (default 8)\n"
         "  --level L                 l1 (default) | l2\n"
         "  --mapping M               identity | firsttouch | shuffled\n"
         "  --csv                     emit the loop table as CSV\n"
         "\n"
         "batch options:\n"
         "  --jobs N                  worker threads (default 1)\n"
         "  --out DIR                 artifact directory (default "
         "ccprof-artifacts)\n"
         "  --periods A,B,..          sampling periods to sweep\n"
         "  --levels l1,l2            cache levels to sweep\n"
         "  --mappings M,N,..         page mappings to sweep\n"
         "  --variants orig,opt       workload variants to sweep\n"
         "  --repeats R               repeated runs per config (seeds "
         "R-perturbed)\n"
         "  --stamp                   record wall-clock provenance "
         "timestamps\n"
         "  --no-reuse                disable the shared-trace engine "
         "(one full\n"
         "                            simulation per job; output is "
         "byte-identical)\n"
         "  --stream-cache N          max resident miss streams "
         "(default 16)\n"
         "  --sim-threads N           total thread budget shared by "
         "workers and\n"
         "                            set-shard helpers (default: "
         "hardware cores;\n"
         "                            output is byte-identical at any "
         "value)\n"
         "  --shards K                force K set shards per simulation "
         "(default:\n"
         "                            one per granted thread)\n"
         "  --static-screen           skip simulating L1 jobs whose "
         "(workload,\n"
         "                            variant) the static analyzer proves\n"
         "                            conflict-free; non-skipped artifacts "
         "are\n"
         "                            byte-identical to an unscreened run\n"
         "\n"
         "analyze (static) options:\n"
         "  --optimized               analyze the padded/reordered build\n"
         "  --threshold N             short-RCD threshold (default 8)\n"
         "  --json                    emit the prediction as JSON\n"
         "  --artifact FILE           cross-check against a stored profile\n"
         "\n"
         "validate options:\n"
         "  --clean-temps             delete stale .ccpa.tmp leftovers "
         "instead\n"
         "                            of only reporting them\n"
         "  --temp-age SECS           only reap temps at least this old "
         "(default\n"
         "                            60; 0 reaps unconditionally — only "
         "safe when\n"
         "                            no writer is live)\n"
         "\n"
         "merge/diff/show options:\n"
         "  --out FILE                write the merged artifact here\n"
         "  --tolerance X             cf drift tolerance (default 0.05)\n"
         "  --check                   exit nonzero when the diff finds "
         "regressions\n"
         "  --json                    emit the report/diff as JSON\n"
         "\n"
         "serve options:\n"
         "  --store DIR               service store root (default "
         "ccprofd-store)\n"
         "  --socket PATH             listen on this Unix-domain socket\n"
         "  --watch DIR               ingest *.ccpa/*.cctr dropped here\n"
         "  --workers N               ingest worker threads (default 1)\n"
         "  --queue N                 ingest queue capacity (default 64)\n"
         "  --poll-ms N               drop-directory poll interval "
         "(default 200)\n"
         "  --once                    drain the drop directory once and "
         "exit\n"
         "  --stats                   query a running daemon's /stats "
         "and exit\n"
         "\n"
         "submit options:\n"
         "  --socket PATH             daemon socket to upload to\n"
         "  --client NAME             accounting label (default: "
         "hostname-style\n"
         "                            'cli')\n";
}

struct CliOptions {
  bool Optimized = false;
  bool Exact = false;
  bool Csv = false;
  ProfileOptions Profile;
  bool Ok = true;
};

CliOptions parseOptions(const std::vector<std::string> &Args) {
  CliOptions Options;
  Options.Profile.Sampling.Kind = SamplingKind::Bursty;

  auto Fail = [&Options](const std::string &Message) {
    std::cerr << "error: " << Message << '\n';
    Options.Ok = false;
  };

  for (size_t I = 0; I < Args.size() && Options.Ok; ++I) {
    const std::string &Arg = Args[I];
    auto NextValue = [&]() -> std::string {
      if (I + 1 >= Args.size()) {
        Fail("missing value for " + Arg);
        return "";
      }
      return Args[++I];
    };

    if (Arg == "--optimized") {
      Options.Optimized = true;
    } else if (Arg == "--exact") {
      Options.Exact = true;
    } else if (Arg == "--csv") {
      Options.Csv = true;
    } else if (Arg == "--period") {
      std::string Value = NextValue();
      if (Options.Ok) {
        long Period = std::atol(Value.c_str());
        if (Period <= 0)
          Fail("--period must be a positive integer");
        else
          Options.Profile.Sampling.MeanPeriod =
              static_cast<uint64_t>(Period);
      }
    } else if (Arg == "--threshold") {
      std::string Value = NextValue();
      if (Options.Ok) {
        long Threshold = std::atol(Value.c_str());
        if (Threshold <= 0)
          Fail("--threshold must be a positive integer");
        else
          Options.Profile.RcdThreshold = static_cast<uint64_t>(Threshold);
      }
    } else if (Arg == "--sampler") {
      std::string Value = NextValue();
      if (Value == "bursty")
        Options.Profile.Sampling.Kind = SamplingKind::Bursty;
      else if (Value == "jitter")
        Options.Profile.Sampling.Kind = SamplingKind::UniformJitter;
      else if (Value == "fixed")
        Options.Profile.Sampling.Kind = SamplingKind::Fixed;
      else if (Options.Ok)
        Fail("unknown sampler '" + Value + "'");
    } else if (Arg == "--level") {
      std::string Value = NextValue();
      if (Value == "l1")
        Options.Profile.Level = ProfileLevel::L1;
      else if (Value == "l2")
        Options.Profile.Level = ProfileLevel::L2;
      else if (Options.Ok)
        Fail("unknown level '" + Value + "'");
    } else if (Arg == "--mapping") {
      std::string Value = NextValue();
      if (Value == "identity")
        Options.Profile.Mapping = PagePolicy::Identity;
      else if (Value == "firsttouch")
        Options.Profile.Mapping = PagePolicy::FirstTouch;
      else if (Value == "shuffled")
        Options.Profile.Mapping = PagePolicy::Shuffled;
      else if (Options.Ok)
        Fail("unknown mapping '" + Value + "'");
    } else {
      Fail("unknown option '" + Arg + "'");
    }
  }
  return Options;
}

int commandList() {
  TextTable Table({"name", "source", "expected"});
  for (const auto &W : makeCaseStudySuite())
    Table.addRow({W->name(), W->sourceFile(),
                  W->expectConflicts() ? "conflicts" : "clean"});
  Table.addSeparator();
  for (const auto &W : makeRodiniaSuite()) {
    if (W->name() == "NW")
      continue; // Already listed with the case studies.
    Table.addRow({W->name(), W->sourceFile(),
                  W->expectConflicts() ? "conflicts" : "clean"});
  }
  Table.addSeparator();
  Table.addRow({"Symmetrization", "symm.cpp", "conflicts"});
  std::cout << Table.render();
  return 0;
}

ProfileResult runPipeline(const Workload &W, const Trace &T,
                          const CliOptions &Options) {
  BinaryImage Image = W.makeBinary();
  ProgramStructure Structure(Image);
  Profiler P(Options.Profile);
  return Options.Exact ? P.profileExact(T, Structure)
                       : P.profile(T, Structure);
}

void emitResult(const ProfileResult &Result, const std::string &Name,
                const CliOptions &Options) {
  if (!Options.Csv) {
    std::cout << renderProfileReport(Result, Name);
    return;
  }
  TextTable Table({"loop", "samples", "miss_contribution", "sets",
                   "cf", "median_rcd", "p_conflict", "verdict"});
  for (const LoopConflictReport &Loop : Result.Loops)
    Table.addRow({Loop.Location, std::to_string(Loop.Samples),
                  fmt::fixed(Loop.MissContribution, 6),
                  std::to_string(Loop.SetsUtilized),
                  fmt::fixed(Loop.ContributionFactor, 6),
                  std::to_string(Loop.MedianRcd),
                  fmt::fixed(Loop.ConflictProbability, 4),
                  Loop.ConflictPredicted ? "conflict" : "clean"});
  std::cout << Table.renderCsv();
}

int commandProfile(const std::string &Name, const CliOptions &Options) {
  std::unique_ptr<Workload> W = makeWorkloadByName(Name);
  if (!W) {
    std::cerr << "error: unknown workload '" << Name
              << "' (try: ccprof list)\n";
    return 1;
  }
  Trace T;
  W->run(Options.Optimized ? WorkloadVariant::Optimized
                           : WorkloadVariant::Original,
         &T);
  emitResult(runPipeline(*W, T, Options), W->name(), Options);
  return 0;
}

int commandCompare(const std::string &Name, const CliOptions &Options) {
  std::unique_ptr<Workload> W = makeWorkloadByName(Name);
  if (!W) {
    std::cerr << "error: unknown workload '" << Name << "'\n";
    return 1;
  }
  for (WorkloadVariant Variant :
       {WorkloadVariant::Original, WorkloadVariant::Optimized}) {
    Trace T;
    W->run(Variant, &T);
    ProfileResult Result = runPipeline(*W, T, Options);
    std::cout << "=== " << W->name() << " ("
              << (Variant == WorkloadVariant::Original ? "original"
                                                        : "optimized")
              << ") ===\n";
    emitResult(Result, W->name(), Options);
    std::cout << '\n';
  }
  return 0;
}

int commandTrace(const std::string &Name, const std::string &Path,
                 const CliOptions &Options) {
  std::unique_ptr<Workload> W = makeWorkloadByName(Name);
  if (!W) {
    std::cerr << "error: unknown workload '" << Name << "'\n";
    return 1;
  }
  Trace T;
  W->run(Options.Optimized ? WorkloadVariant::Optimized
                           : WorkloadVariant::Original,
         &T);
  std::ofstream Out(Path, std::ios::binary);
  if (!Out || !T.writeTo(Out)) {
    std::cerr << "error: cannot write trace to " << Path << '\n';
    return 1;
  }
  std::cout << "wrote " << T.size() << " records to " << Path << '\n';
  return 0;
}

int commandAnalyze(const std::string &Path, const std::string &Name,
                   const CliOptions &Options) {
  std::unique_ptr<Workload> W = makeWorkloadByName(Name);
  if (!W) {
    std::cerr << "error: unknown workload '" << Name << "'\n";
    return 1;
  }
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::cerr << "error: cannot open " << Path << '\n';
    return 1;
  }
  Trace T;
  std::string Reason;
  if (!Trace::readFrom(In, T, &Reason)) {
    std::cerr << "error: cannot read trace from " << Path << ": " << Reason
              << '\n';
    return 1;
  }
  emitResult(runPipeline(*W, T, Options), W->name() + " (from trace)",
             Options);
  return 0;
}

//===----------------------------------------------------------------------===//
// Static analysis command
//===----------------------------------------------------------------------===//

std::string joinSets(const std::vector<uint32_t> &Sets, size_t MaxShown = 8) {
  std::string Out;
  for (size_t I = 0; I < Sets.size() && I < MaxShown; ++I) {
    if (I)
      Out += ',';
    Out += std::to_string(Sets[I]);
  }
  if (Sets.size() > MaxShown)
    Out += ",+" + std::to_string(Sets.size() - MaxShown);
  return Out;
}

void emitStaticText(const StaticAnalysisResult &Result,
                    const std::string &Name) {
  std::cout << "=== " << Name << ": static conflict prediction ===\n"
            << "geometry: " << Result.Geometry.sizeBytes() / 1024 << "KiB/"
            << Result.Geometry.lineBytes() << "B/"
            << Result.Geometry.associativity() << "-way, "
            << Result.Geometry.numSets() << " sets; model "
            << (Result.ModelComplete ? "complete" : "partial") << ", "
            << Result.TotalAccesses << " modeled access(es), "
            << Result.PredictedMisses << " predicted miss(es)\n";
  TextTable Table({"loop", "accesses", "pred_misses", "cold", "victims",
                   "cf", "median_rcd", "p_conflict", "verdict"});
  for (const LoopPrediction &Loop : Result.Loops) {
    std::string Verdict = Loop.ConflictPredicted ? "conflict" : "clean";
    if (Loop.Truncated)
      Verdict += "*";
    Table.addRow(
        {Loop.Location, std::to_string(Loop.Accesses),
         std::to_string(Loop.PredictedConflictMisses +
                        Loop.PredictedColdMisses),
         std::to_string(Loop.PredictedColdMisses),
         Loop.VictimSets.empty()
             ? "-"
             : std::to_string(Loop.VictimSets.size()) + " (" +
                   joinSets(Loop.VictimSets) + ")",
         fmt::fixed(Loop.PredictedContributionFactor, 4),
         fmt::fixed(Loop.PredictedMedianRcd, 1),
         fmt::fixed(Loop.ConflictProbability, 4), Verdict});
  }
  std::cout << Table.render();
  std::cout << "static verdict: "
            << (Result.conflictFree() ? "conflict-free"
                                      : "conflicts predicted")
            << '\n';
}

void emitStaticJson(const StaticAnalysisResult &Result,
                    const std::string &Name,
                    const ConsistencyReport *Consistency) {
  std::ostream &Out = std::cout;
  Out << "{\n  \"workload\": \"" << Name << "\",\n"
      << "  \"model_complete\": "
      << (Result.ModelComplete ? "true" : "false") << ",\n"
      << "  \"conflict_free\": "
      << (Result.conflictFree() ? "true" : "false") << ",\n"
      << "  \"total_accesses\": " << Result.TotalAccesses << ",\n"
      << "  \"predicted_misses\": " << Result.PredictedMisses << ",\n"
      << "  \"loops\": [\n";
  for (size_t I = 0; I < Result.Loops.size(); ++I) {
    const LoopPrediction &Loop = Result.Loops[I];
    Out << "    {\"loop\": \"" << Loop.Location << "\", \"accesses\": "
        << Loop.Accesses << ", \"predicted_conflict_misses\": "
        << Loop.PredictedConflictMisses << ", \"predicted_cold_misses\": "
        << Loop.PredictedColdMisses << ", \"victim_sets\": ["
        << joinSets(Loop.VictimSets, Loop.VictimSets.size())
        << "], \"contribution_factor\": "
        << fmt::fixed(Loop.PredictedContributionFactor, 6)
        << ", \"median_rcd\": " << fmt::fixed(Loop.PredictedMedianRcd, 1)
        << ", \"p_conflict\": " << fmt::fixed(Loop.ConflictProbability, 6)
        << ", \"conflict\": " << (Loop.ConflictPredicted ? "true" : "false")
        << ", \"exact_placement\": "
        << (Loop.ExactPlacement ? "true" : "false") << ", \"truncated\": "
        << (Loop.Truncated ? "true" : "false") << "}"
        << (I + 1 < Result.Loops.size() ? "," : "") << '\n';
  }
  Out << "  ]";
  if (Consistency) {
    Out << ",\n  \"consistency\": {\n    \"consistent\": "
        << (Consistency->consistent() ? "true" : "false")
        << ",\n    \"confirmed\": " << Consistency->Confirmed
        << ", \"static_only\": " << Consistency->StaticOnly
        << ", \"measured_only\": " << Consistency->MeasuredOnly
        << ", \"contradicted\": " << Consistency->Contradicted
        << ",\n    \"loops\": [\n";
    for (size_t I = 0; I < Consistency->Loops.size(); ++I) {
      const LoopConsistency &Loop = Consistency->Loops[I];
      Out << "      {\"loop\": \"" << Loop.Location << "\", \"verdict\": \""
          << consistencyVerdictName(Loop.Verdict)
          << "\", \"victim_agreement\": "
          << fmt::fixed(Loop.VictimSetAgreement, 4) << "}"
          << (I + 1 < Consistency->Loops.size() ? "," : "") << '\n';
    }
    Out << "    ]\n  }";
  }
  Out << "\n}\n";
}

void emitConsistencyText(const ConsistencyReport &Report) {
  std::cout << "=== static vs measured consistency ===\n";
  TextTable Table({"loop", "static", "measured", "victim_agreement",
                   "verdict", "note"});
  for (const LoopConsistency &Loop : Report.Loops)
    Table.addRow({Loop.Location,
                  Loop.HasStatic
                      ? (Loop.StaticConflict ? "conflict" : "clean")
                      : "-",
                  Loop.HasMeasured
                      ? (Loop.MeasuredConflict ? "conflict" : "clean")
                      : "-",
                  fmt::fixed(Loop.VictimSetAgreement, 2),
                  consistencyVerdictName(Loop.Verdict), Loop.Note});
  std::cout << Table.render();
  std::cout << "consistency: " << Report.Confirmed << " confirmed, "
            << Report.StaticOnly << " static-only, " << Report.MeasuredOnly
            << " measured-only, " << Report.Contradicted
            << " contradicted\n";
  if (!Report.consistent())
    std::cout << "warning: measurement contradicts the access model under "
                 "exact placement — the model mis-states a stride, trip "
                 "count, or allocation\n";
}

int commandStaticAnalyze(const std::string &Name,
                         const std::vector<std::string> &Args) {
  bool Optimized = false, Json = false;
  uint64_t Threshold = ConflictClassifier::DefaultRcdThreshold;
  std::string ArtifactPath;
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    if (Arg == "--optimized") {
      Optimized = true;
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--threshold" || Arg == "--artifact") {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: missing value for " << Arg << '\n';
        return 1;
      }
      const std::string Value = Args[++I];
      if (Arg == "--artifact") {
        ArtifactPath = Value;
      } else {
        long Parsed = std::atol(Value.c_str());
        if (Parsed <= 0) {
          std::cerr << "error: --threshold must be a positive integer\n";
          return 1;
        }
        Threshold = static_cast<uint64_t>(Parsed);
      }
    } else {
      std::cerr << "error: unknown analyze option '" << Arg << "'\n";
      return 1;
    }
  }

  std::unique_ptr<Workload> W = makeWorkloadByName(Name);
  if (!W) {
    std::cerr << "error: unknown workload '" << Name
              << "' (try: ccprof list)\n";
    return 1;
  }
  const WorkloadVariant Variant =
      Optimized ? WorkloadVariant::Optimized : WorkloadVariant::Original;
  StaticAccessModel Model = W->accessModel(Variant);
  if (Model.empty()) {
    std::cerr << "error: workload '" << Name
              << "' declares no static access model\n";
    return 1;
  }

  BinaryImage Image = W->makeBinary();
  ProgramStructure Structure(Image);
  StaticConflictAnalyzer::Options Opts;
  Opts.RcdThreshold = Threshold;
  StaticAnalysisResult Result =
      StaticConflictAnalyzer(Opts).analyze(Model, &Structure);

  ConsistencyReport Consistency;
  bool HaveConsistency = false;
  if (!ArtifactPath.empty()) {
    ProfileArtifact Artifact;
    std::string Error;
    if (!ProfileArtifact::loadFromFile(ArtifactPath, Artifact, &Error)) {
      std::cerr << "error: " << Error << '\n';
      return 1;
    }
    Consistency = ConsistencyChecker().check(Result, Artifact.Result);
    HaveConsistency = true;
  }

  if (Json) {
    emitStaticJson(Result, W->name(),
                   HaveConsistency ? &Consistency : nullptr);
  } else {
    emitStaticText(Result, W->name());
    if (HaveConsistency) {
      std::cout << '\n';
      emitConsistencyText(Consistency);
    }
  }
  return HaveConsistency && !Consistency.consistent() ? 2 : 0;
}

//===----------------------------------------------------------------------===//
// Batch pipeline commands
//===----------------------------------------------------------------------===//

std::vector<std::string> splitList(const std::string &Value) {
  std::vector<std::string> Parts;
  std::stringstream Stream(Value);
  std::string Part;
  while (std::getline(Stream, Part, ','))
    if (!Part.empty())
      Parts.push_back(Part);
  return Parts;
}

struct BatchCliOptions {
  BatchMatrix Matrix;
  unsigned Jobs = 1;
  std::string OutDir = "ccprof-artifacts";
  bool Stamp = false;
  /// Shared-trace engine on by default; --no-reuse restores the naive
  /// one-simulation-per-job path (mainly for A/B measurement).
  bool Reuse = true;
  size_t StreamCacheEntries = MissStreamCache::DefaultMaxEntries;
  /// Total thread budget (workers + shard helpers); 0 = hardware cores.
  unsigned SimThreads = 0;
  /// Forced set-shard count per simulation; 0 = one per granted thread.
  unsigned Shards = 0;
  /// Skip L1 jobs the static analyzer proves conflict-free.
  bool StaticScreen = false;
  bool Ok = true;
};

BatchCliOptions parseBatchOptions(const std::vector<std::string> &Args) {
  BatchCliOptions Options;
  auto Fail = [&Options](const std::string &Message) {
    std::cerr << "error: " << Message << '\n';
    Options.Ok = false;
  };

  for (size_t I = 0; I < Args.size() && Options.Ok; ++I) {
    const std::string &Arg = Args[I];
    auto NextValue = [&]() -> std::string {
      if (I + 1 >= Args.size()) {
        Fail("missing value for " + Arg);
        return "";
      }
      return Args[++I];
    };
    auto ParsePositive = [&](const std::string &Value, const char *What,
                             auto &Slot) {
      long Parsed = std::atol(Value.c_str());
      if (Parsed <= 0)
        Fail(std::string(What) + " must be a positive integer");
      else
        Slot = static_cast<std::remove_reference_t<decltype(Slot)>>(Parsed);
    };

    if (Arg == "--jobs") {
      std::string Value = NextValue();
      if (Options.Ok)
        ParsePositive(Value, "--jobs", Options.Jobs);
    } else if (Arg == "--out") {
      std::string Value = NextValue();
      if (Options.Ok)
        Options.OutDir = Value;
    } else if (Arg == "--repeats") {
      std::string Value = NextValue();
      if (Options.Ok)
        ParsePositive(Value, "--repeats", Options.Matrix.Repeats);
    } else if (Arg == "--threshold") {
      std::string Value = NextValue();
      if (Options.Ok)
        ParsePositive(Value, "--threshold", Options.Matrix.RcdThreshold);
    } else if (Arg == "--periods" || Arg == "--period") {
      std::string Value = NextValue();
      if (!Options.Ok)
        continue;
      Options.Matrix.Periods.clear();
      for (const std::string &Part : splitList(Value)) {
        uint64_t Period = 0;
        ParsePositive(Part, "--periods", Period);
        if (!Options.Ok)
          break;
        Options.Matrix.Periods.push_back(Period);
      }
      if (Options.Ok && Options.Matrix.Periods.empty())
        Fail("--periods needs at least one value");
    } else if (Arg == "--levels" || Arg == "--level") {
      std::string Value = NextValue();
      if (!Options.Ok)
        continue;
      Options.Matrix.Levels.clear();
      for (const std::string &Part : splitList(Value)) {
        if (Part == "l1")
          Options.Matrix.Levels.push_back(ProfileLevel::L1);
        else if (Part == "l2")
          Options.Matrix.Levels.push_back(ProfileLevel::L2);
        else
          Fail("unknown level '" + Part + "'");
      }
      if (Options.Ok && Options.Matrix.Levels.empty())
        Fail("--levels needs at least one value");
    } else if (Arg == "--mappings" || Arg == "--mapping") {
      std::string Value = NextValue();
      if (!Options.Ok)
        continue;
      Options.Matrix.Mappings.clear();
      for (const std::string &Part : splitList(Value)) {
        if (Part == "identity")
          Options.Matrix.Mappings.push_back(PagePolicy::Identity);
        else if (Part == "firsttouch")
          Options.Matrix.Mappings.push_back(PagePolicy::FirstTouch);
        else if (Part == "shuffled")
          Options.Matrix.Mappings.push_back(PagePolicy::Shuffled);
        else
          Fail("unknown mapping '" + Part + "'");
      }
      if (Options.Ok && Options.Matrix.Mappings.empty())
        Fail("--mappings needs at least one value");
    } else if (Arg == "--variants") {
      std::string Value = NextValue();
      if (!Options.Ok)
        continue;
      Options.Matrix.Variants.clear();
      for (const std::string &Part : splitList(Value)) {
        if (Part == "orig" || Part == "original")
          Options.Matrix.Variants.push_back(WorkloadVariant::Original);
        else if (Part == "opt" || Part == "optimized")
          Options.Matrix.Variants.push_back(WorkloadVariant::Optimized);
        else
          Fail("unknown variant '" + Part + "'");
      }
      if (Options.Ok && Options.Matrix.Variants.empty())
        Fail("--variants needs at least one value");
    } else if (Arg == "--sampler") {
      std::string Value = NextValue();
      if (Value == "bursty")
        Options.Matrix.Sampler = SamplingKind::Bursty;
      else if (Value == "jitter")
        Options.Matrix.Sampler = SamplingKind::UniformJitter;
      else if (Value == "fixed")
        Options.Matrix.Sampler = SamplingKind::Fixed;
      else if (Options.Ok)
        Fail("unknown sampler '" + Value + "'");
    } else if (Arg == "--exact") {
      Options.Matrix.Exact = true;
    } else if (Arg == "--stamp") {
      Options.Stamp = true;
    } else if (Arg == "--no-reuse") {
      Options.Reuse = false;
    } else if (Arg == "--stream-cache") {
      std::string Value = NextValue();
      if (Options.Ok)
        ParsePositive(Value, "--stream-cache", Options.StreamCacheEntries);
    } else if (Arg == "--sim-threads") {
      std::string Value = NextValue();
      if (Options.Ok)
        ParsePositive(Value, "--sim-threads", Options.SimThreads);
    } else if (Arg == "--shards") {
      std::string Value = NextValue();
      if (Options.Ok)
        ParsePositive(Value, "--shards", Options.Shards);
    } else if (Arg == "--static-screen") {
      Options.StaticScreen = true;
    } else {
      Fail("unknown batch option '" + Arg + "'");
    }
  }
  return Options;
}

int commandBatch(const std::string &Selection,
                 const std::vector<std::string> &Args) {
  BatchCliOptions Options = parseBatchOptions(Args);
  if (!Options.Ok)
    return 1;
  if (Options.StaticScreen && !Options.Reuse) {
    std::cerr << "error: --static-screen requires the shared-trace engine "
                 "(drop --no-reuse)\n";
    return 1;
  }

  if (Selection == "all") {
    Options.Matrix.Workloads = defaultBatchWorkloads();
  } else {
    Options.Matrix.Workloads = splitList(Selection);
    for (const std::string &Name : Options.Matrix.Workloads) {
      if (!makeWorkloadByName(Name)) {
        std::cerr << "error: unknown workload '" << Name
                  << "' (try: ccprof list)\n";
        return 1;
      }
    }
  }
  if (Options.Matrix.Workloads.empty()) {
    std::cerr << "error: no workloads selected\n";
    return 1;
  }

  std::vector<JobSpec> Jobs = expandMatrix(Options.Matrix);
  ArtifactStore Store(Options.OutDir);
  std::string Error;
  if (!Store.ensureExists(&Error)) {
    std::cerr << "error: " << Error << '\n';
    return 1;
  }

  const uint64_t Timestamp =
      Options.Stamp
          ? static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count())
          : 0;

  std::cout << "batch: " << Jobs.size() << " job(s) on " << Options.Jobs
            << " worker thread(s) -> " << Options.OutDir
            << (Options.Reuse ? " (shared-trace engine)" : " (naive, --no-reuse)")
            << '\n';

  auto Progress = [&](const JobOutcome &Outcome, size_t Done) {
    if (Outcome.Skipped)
      std::cout << "  [" << Done << "/" << Jobs.size() << "] skipped "
                << Outcome.Job.key() << " (statically conflict-free)\n";
    else if (Outcome.ok())
      std::cout << "  [" << Done << "/" << Jobs.size() << "] "
                << Outcome.Job.key() << '\n';
    else
      std::cout << "  [" << Done << "/" << Jobs.size() << "] FAILED "
                << Outcome.Job.key() << ": " << Outcome.Error << '\n';
  };

  size_t Failures = 0;
  std::vector<JobOutcome> Outcomes;
  SharedBatchStats Shared;
  if (Options.Reuse) {
    MissStreamCache StreamCache(Options.StreamCacheEntries);
    BatchExecOptions Exec;
    Exec.Workers = Options.Jobs;
    Exec.SimThreads = Options.SimThreads;
    Exec.Shards = Options.Shards;
    Exec.StaticScreen = Options.StaticScreen;
    Outcomes = runJobsShared(Jobs, Exec, Timestamp, Progress, &StreamCache,
                             &Shared);
  } else {
    Outcomes = runJobs(Jobs, Options.Jobs, Timestamp, Progress);
  }

  // Persist sequentially in job order: output listing and directory
  // contents are deterministic regardless of completion order.
  size_t Skipped = 0;
  for (const JobOutcome &Outcome : Outcomes) {
    if (Outcome.Skipped) {
      ++Skipped;
      continue;
    }
    if (!Outcome.ok()) {
      ++Failures;
      continue;
    }
    if (Store.save(Outcome.Artifact, &Error).empty()) {
      std::cerr << "error: " << Error << '\n';
      ++Failures;
    }
  }

  if (Options.Reuse) {
    const MissStreamCacheStats &S = Shared.Streams;
    std::cout << "batch: " << Shared.TraceGroups << " trace group(s); "
              << "miss-stream cache: " << S.Hits << " hit(s), " << S.Misses
              << " simulation(s), " << S.Evictions << " eviction(s)";
    if (Shared.ShardCacheReuses)
      std::cout << "; shard caches reused " << Shared.ShardCacheReuses
                << " time(s)";
    if (Shared.ShardedSims) {
      std::cout << "; " << Shared.ShardedSims << " sharded sim(s)";
      // An explicit --shards on an exhausted budget still shards, but
      // one thread replays every shard serially — call that out so a
      // sweep over --shards is not mistaken for parallel execution.
      if (Shared.UnhelpedShardedSims)
        std::cout << ", " << Shared.UnhelpedShardedSims
                  << " unhelped (serialized on one thread)";
    }
    if (Options.StaticScreen)
      std::cout << "; static screen skipped " << Shared.StaticSkipped
                << " job(s)";
    std::cout << '\n';
    if (!S.Entries.empty()) {
      TextTable Streams({"stream", "hits", "events", "resident"});
      for (const MissStreamCacheEntryStats &E : S.Entries)
        Streams.addRow({E.Key, std::to_string(E.Hits),
                        std::to_string(E.Events), E.Resident ? "yes" : "no"});
      std::cout << Streams.render();
    }
  }

  std::cout << "batch: wrote " << (Outcomes.size() - Failures - Skipped)
            << " artifact(s)";
  if (Skipped)
    std::cout << ", " << Skipped << " job(s) skipped";
  if (Failures)
    std::cout << ", " << Failures << " job(s) failed";
  std::cout << '\n';
  return Failures == 0 ? 0 : 1;
}

/// Expands \p PathArg into artifact paths: a directory contributes its
/// store listing (a listing error or an artifact-free directory is an
/// error — never silently "empty"), anything else passes through as a
/// file path. \returns false with \p Error set on failure.
bool collectArtifactPaths(const std::string &PathArg,
                          std::vector<std::string> &Paths,
                          std::string &Error) {
  std::error_code Ec;
  if (!std::filesystem::is_directory(PathArg, Ec)) {
    Paths.push_back(PathArg);
    return true;
  }
  ArtifactStore Store(PathArg);
  std::string ListError;
  std::vector<std::string> Listed = Store.list(&ListError);
  if (!ListError.empty()) {
    Error = ListError;
    return false;
  }
  if (Listed.empty()) {
    Error = "no " + std::string(ArtifactExtension) + " artifacts in " +
            PathArg;
    return false;
  }
  Paths.insert(Paths.end(), Listed.begin(), Listed.end());
  return true;
}

int commandMerge(const std::vector<std::string> &Args) {
  std::vector<std::string> Paths;
  std::string OutPath;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (Args[I] == "--out") {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: missing value for --out\n";
        return 1;
      }
      OutPath = Args[++I];
    } else {
      std::string Error;
      if (!collectArtifactPaths(Args[I], Paths, Error)) {
        std::cerr << "error: " << Error << '\n';
        return 1;
      }
    }
  }
  if (Paths.empty()) {
    std::cerr << "error: merge needs at least one artifact\n";
    return 1;
  }

  std::vector<ProfileArtifact> Artifacts(Paths.size());
  for (size_t I = 0; I < Paths.size(); ++I) {
    std::string Error;
    if (!ProfileArtifact::loadFromFile(Paths[I], Artifacts[I], &Error)) {
      std::cerr << "error: " << Error << '\n';
      return 1;
    }
  }

  MergeResult Merged = mergeArtifacts(Artifacts);
  if (!Merged.ok()) {
    std::cerr << "error: " << Merged.Error << '\n';
    return 1;
  }

  if (!OutPath.empty()) {
    std::string Error;
    if (!Merged.Merged.saveToFile(OutPath, &Error)) {
      std::cerr << "error: " << Error << '\n';
      return 1;
    }
    std::cout << "merged " << Artifacts.size() << " artifact(s) ("
              << Merged.Merged.Provenance.MergedRuns << " run(s)) -> "
              << OutPath << '\n';
    return 0;
  }
  std::cout << renderProfileReport(
      Merged.Merged.Result,
      Merged.Merged.Provenance.Job.WorkloadName + " (merge of " +
          std::to_string(Merged.Merged.Provenance.MergedRuns) + " runs)");
  return 0;
}

int commandDiff(const std::vector<std::string> &Args) {
  std::vector<std::string> Paths;
  DiffOptions Options;
  bool Check = false;
  bool Json = false;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (Args[I] == "--tolerance") {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: missing value for --tolerance\n";
        return 1;
      }
      Options.CfTolerance = std::atof(Args[++I].c_str());
      if (Options.CfTolerance < 0) {
        std::cerr << "error: --tolerance must be non-negative\n";
        return 1;
      }
    } else if (Args[I] == "--check") {
      Check = true;
    } else if (Args[I] == "--json") {
      Json = true;
    } else {
      std::string Error;
      if (!collectArtifactPaths(Args[I], Paths, Error)) {
        std::cerr << "error: " << Error << '\n';
        return 1;
      }
    }
  }
  if (Paths.size() != 2) {
    std::cerr << "error: diff needs exactly two artifacts\n";
    return 1;
  }

  ProfileArtifact A, B;
  std::string Error;
  if (!ProfileArtifact::loadFromFile(Paths[0], A, &Error) ||
      !ProfileArtifact::loadFromFile(Paths[1], B, &Error)) {
    std::cerr << "error: " << Error << '\n';
    return 1;
  }

  DiffResult Diff = diffArtifacts(A, B, Options);
  std::cout << (Json ? renderDiffJson(Diff, Paths[0], Paths[1])
                     : renderDiff(Diff, Paths[0], Paths[1]));
  return Check && Diff.Regressions > 0 ? 2 : 0;
}

int commandShow(const std::vector<std::string> &Args) {
  bool Json = false;
  std::vector<std::string> PathArgs;
  for (const std::string &Arg : Args) {
    if (Arg == "--json")
      Json = true;
    else
      PathArgs.push_back(Arg);
  }
  if (PathArgs.size() != 1) {
    std::cerr << "error: show needs one artifact or directory path\n";
    return 1;
  }
  std::vector<std::string> Paths;
  std::string Error;
  if (!collectArtifactPaths(PathArgs[0], Paths, Error)) {
    std::cerr << "error: " << Error << '\n';
    return 1;
  }
  if (Json)
    std::cout << "[\n";
  for (size_t I = 0; I < Paths.size(); ++I) {
    ProfileArtifact Artifact;
    if (!ProfileArtifact::loadFromFile(Paths[I], Artifact, &Error)) {
      std::cerr << "error: " << Error << '\n';
      return 1;
    }
    const JobSpec &Job = Artifact.Provenance.Job;
    if (Json) {
      if (I)
        std::cout << ",\n";
      std::cout << "{\"artifact\": \"" << Job.key() << "\", \"format_version\": "
                << Artifact.FormatVersion << ", \"merged_runs\": "
                << Artifact.Provenance.MergedRuns << ", \"tool\": \""
                << Artifact.Provenance.Tool << "\",\n\"report\": "
                << renderProfileReportJson(Artifact.Result, Job.WorkloadName)
                << "}";
      continue;
    }
    if (I)
      std::cout << '\n';
    std::cout << "artifact: " << Job.key() << " (format v"
              << Artifact.FormatVersion << ", "
              << Artifact.Provenance.MergedRuns << " run(s), tool "
              << Artifact.Provenance.Tool << ")\n";
    std::cout << renderProfileReport(Artifact.Result, Job.WorkloadName);
  }
  if (Json)
    std::cout << "\n]\n";
  return 0;
}

int commandValidate(const std::vector<std::string> &Args) {
  size_t Checked = 0, Corrupt = 0, Stale = 0, Cleaned = 0;
  bool CleanTemps = false;
  unsigned TempAgeSeconds = ArtifactStore::DefaultTempReapAgeSeconds;
  std::vector<std::string> Paths;
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    if (Arg == "--clean-temps") {
      CleanTemps = true;
    } else if (Arg == "--temp-age") {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: missing value for --temp-age\n";
        return 1;
      }
      const std::string Value = Args[++I];
      long Parsed = std::atol(Value.c_str());
      if (Parsed < 0 || (Parsed == 0 && Value != "0")) {
        std::cerr << "error: --temp-age must be a non-negative integer\n";
        return 1;
      }
      TempAgeSeconds = static_cast<unsigned>(Parsed);
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.empty()) {
    std::cerr << "error: validate needs at least one artifact or "
                 "directory path\n";
    return 1;
  }
  for (const std::string &Arg : Paths) {
    std::error_code Ec;
    if (std::filesystem::is_directory(Arg, Ec)) {
      ArtifactStore Store(Arg);
      std::string Error;
      ArtifactValidationReport Report = Store.validate(&Error);
      if (!Error.empty()) {
        std::cerr << "error: " << Error << '\n';
        return 1;
      }
      Checked += Report.Checked;
      Corrupt += Report.Issues.size();
      Stale += Report.StaleTemporaries.size();
      for (const ArtifactValidationIssue &Issue : Report.Issues)
        std::cout << "FAIL " << Issue.Path << ": " << Issue.Reason << '\n';
      if (CleanTemps) {
        std::vector<std::string> Failed;
        std::vector<std::string> Removed =
            Store.cleanStaleTemporaries(&Failed, TempAgeSeconds);
        Cleaned += Removed.size();
        for (const std::string &Temp : Removed)
          std::cout << "cleaned " << Temp << '\n';
        for (const std::string &Failure : Failed)
          std::cout << "FAIL cleaning " << Failure << '\n';
        Corrupt += Failed.size();
      } else {
        for (const std::string &Temp : Report.StaleTemporaries)
          std::cout << "stale " << Temp
                    << ": leftover temp from an interrupted save (safe to "
                       "delete; rerun with --clean-temps to remove)\n";
      }
      continue;
    }
    ++Checked;
    ProfileArtifact Artifact;
    std::string Reason;
    std::ifstream In(Arg, std::ios::binary);
    if (!In) {
      ++Corrupt;
      std::cout << "FAIL " << Arg << ": cannot open for reading\n";
    } else if (!ProfileArtifact::readFrom(In, Artifact, &Reason)) {
      ++Corrupt;
      std::cout << "FAIL " << Arg << ": " << Reason << '\n';
    } else {
      std::cout << "ok   " << Arg << " (format v" << Artifact.FormatVersion
                << ", " << Artifact.Result.Loops.size() << " loop(s), "
                << Artifact.Provenance.MergedRuns << " run(s))\n";
    }
  }
  std::cout << "validate: " << Checked << " artifact(s), "
            << (Checked - std::min(Checked, Corrupt)) << " ok, " << Corrupt
            << " corrupt";
  if (Stale)
    std::cout << ", " << Stale << " stale temp(s)";
  if (Cleaned)
    std::cout << " (" << Cleaned << " cleaned)";
  std::cout << '\n';
  return Corrupt == 0 ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// Service commands (ccprofd)
//===----------------------------------------------------------------------===//

std::atomic<bool> GServeStop{false};

void serveSignalHandler(int) { GServeStop.store(true); }

int commandServe(const std::vector<std::string> &Args) {
  ServiceConfig Config;
  bool StatsOnly = false;
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    auto NextValue = [&](std::string &Slot) {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: missing value for " << Arg << '\n';
        return false;
      }
      Slot = Args[++I];
      return true;
    };
    std::string Value;
    if (Arg == "--store") {
      if (!NextValue(Config.StoreDir))
        return 1;
    } else if (Arg == "--socket") {
      if (!NextValue(Config.SocketPath))
        return 1;
    } else if (Arg == "--watch") {
      if (!NextValue(Config.WatchDir))
        return 1;
    } else if (Arg == "--workers") {
      if (!NextValue(Value))
        return 1;
      long Parsed = std::atol(Value.c_str());
      if (Parsed <= 0) {
        std::cerr << "error: --workers must be a positive integer\n";
        return 1;
      }
      Config.Workers = static_cast<unsigned>(Parsed);
    } else if (Arg == "--queue") {
      if (!NextValue(Value))
        return 1;
      long Parsed = std::atol(Value.c_str());
      if (Parsed <= 0) {
        std::cerr << "error: --queue must be a positive integer\n";
        return 1;
      }
      Config.QueueCapacity = static_cast<size_t>(Parsed);
    } else if (Arg == "--poll-ms") {
      if (!NextValue(Value))
        return 1;
      long Parsed = std::atol(Value.c_str());
      if (Parsed <= 0) {
        std::cerr << "error: --poll-ms must be a positive integer\n";
        return 1;
      }
      Config.PollMs = static_cast<unsigned>(Parsed);
    } else if (Arg == "--once") {
      Config.Once = true;
    } else if (Arg == "--stats") {
      StatsOnly = true;
    } else {
      std::cerr << "error: unknown serve option '" << Arg << "'\n";
      return 1;
    }
  }

  if (StatsOnly) {
    if (Config.SocketPath.empty()) {
      std::cerr << "error: --stats needs --socket PATH\n";
      return 1;
    }
    ServiceReply Reply = serviceQueryStats(Config.SocketPath);
    if (!Reply.Error.empty()) {
      std::cerr << "error: " << Reply.Error << '\n';
      return 1;
    }
    std::cout << Reply.Line << '\n';
    return 0;
  }

  if (Config.Once && Config.WatchDir.empty()) {
    std::cerr << "error: --once needs --watch DIR (it drains the drop "
                 "directory and exits)\n";
    return 1;
  }
  if (!Config.Once && Config.SocketPath.empty() && Config.WatchDir.empty()) {
    std::cerr << "error: serve needs at least one ingress surface "
                 "(--socket and/or --watch)\n";
    return 1;
  }

  Ccprofd Daemon(Config);
  Daemon.setAlertSink([](const RegressionAlert &Alert) {
    std::cout << "ALERT " << renderAlertJson(Alert) << std::endl;
  });

  std::string Error;
  if (Config.Once) {
    if (!Daemon.runOnce(&Error)) {
      std::cerr << "error: " << Error << '\n';
      return 1;
    }
    std::cout << Daemon.statsJson() << '\n';
    return 0;
  }

  if (!Daemon.start(&Error)) {
    std::cerr << "error: " << Error << '\n';
    return 1;
  }
  std::cout << "ccprofd: store " << Config.StoreDir;
  if (!Config.SocketPath.empty())
    std::cout << ", socket " << Config.SocketPath;
  if (!Config.WatchDir.empty())
    std::cout << ", watching " << Config.WatchDir;
  std::cout << " (" << std::max(1u, Config.Workers)
            << " worker(s); ^C to stop)" << std::endl;

  std::signal(SIGINT, serveSignalHandler);
  std::signal(SIGTERM, serveSignalHandler);
  while (!GServeStop.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Daemon.stop();
  std::cout << Daemon.statsJson() << '\n';
  return 0;
}

int commandSubmit(const std::vector<std::string> &Args) {
  std::string SocketPath;
  std::string Client = "cli";
  std::vector<std::string> Files;
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    if (Arg == "--socket" || Arg == "--client") {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: missing value for " << Arg << '\n';
        return 1;
      }
      (Arg == "--socket" ? SocketPath : Client) = Args[++I];
    } else {
      Files.push_back(Arg);
    }
  }
  if (SocketPath.empty()) {
    std::cerr << "error: submit needs --socket PATH\n";
    return 1;
  }
  if (Files.empty()) {
    std::cerr << "error: submit needs at least one .ccpa/.cctr file\n";
    return 1;
  }
  size_t Failures = 0;
  for (const std::string &File : Files) {
    const ServiceReply Reply = serviceSubmitFile(SocketPath, Client, File);
    if (!Reply.Error.empty()) {
      std::cerr << "error: " << File << ": " << Reply.Error << '\n';
      ++Failures;
    } else if (!Reply.Ok) {
      std::cerr << "error: " << File << ": daemon said: " << Reply.Line
                << '\n';
      ++Failures;
    } else {
      std::cout << File << ": " << Reply.Line << '\n';
    }
  }
  return Failures == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  if (Args.empty() || Args[0] == "--help" || Args[0] == "-h" ||
      Args[0] == "help") {
    printUsage(Args.empty() ? std::cerr : std::cout);
    return Args.empty() ? 1 : 0;
  }

  const std::string &Command = Args[0];
  if (Command == "list")
    return commandList();

  if (Command == "profile" || Command == "compare") {
    if (Args.size() < 2) {
      std::cerr << "error: " << Command << " needs a workload name\n";
      return 1;
    }
    CliOptions Options =
        parseOptions(std::vector<std::string>(Args.begin() + 2, Args.end()));
    if (!Options.Ok)
      return 1;
    return Command == "profile" ? commandProfile(Args[1], Options)
                                : commandCompare(Args[1], Options);
  }

  if (Command == "batch") {
    if (Args.size() < 2) {
      std::cerr << "error: batch needs a workload selection "
                   "(names or 'all')\n";
      return 1;
    }
    return commandBatch(
        Args[1], std::vector<std::string>(Args.begin() + 2, Args.end()));
  }

  if (Command == "merge")
    return commandMerge(
        std::vector<std::string>(Args.begin() + 1, Args.end()));

  if (Command == "diff")
    return commandDiff(
        std::vector<std::string>(Args.begin() + 1, Args.end()));

  if (Command == "show") {
    if (Args.size() < 2) {
      std::cerr << "error: show needs one artifact or directory path\n";
      return 1;
    }
    return commandShow(
        std::vector<std::string>(Args.begin() + 1, Args.end()));
  }

  if (Command == "serve")
    return commandServe(
        std::vector<std::string>(Args.begin() + 1, Args.end()));

  if (Command == "submit")
    return commandSubmit(
        std::vector<std::string>(Args.begin() + 1, Args.end()));

  if (Command == "validate") {
    if (Args.size() < 2) {
      std::cerr << "error: validate needs at least one artifact or "
                   "directory path\n";
      return 1;
    }
    return commandValidate(
        std::vector<std::string>(Args.begin() + 1, Args.end()));
  }

  if (Command == "analyze" && Args.size() >= 2 &&
      (Args.size() < 3 || Args[2].rfind("--", 0) == 0)) {
    // Static form: "analyze <workload> [--flags]". The trace-replay form
    // below keeps its two positional arguments (file, then workload).
    return commandStaticAnalyze(
        Args[1], std::vector<std::string>(Args.begin() + 2, Args.end()));
  }

  if (Command == "trace" || Command == "analyze") {
    if (Args.size() < 3) {
      std::cerr << "error: " << Command << " needs two arguments\n";
      return 1;
    }
    CliOptions Options =
        parseOptions(std::vector<std::string>(Args.begin() + 3, Args.end()));
    if (!Options.Ok)
      return 1;
    return Command == "trace" ? commandTrace(Args[1], Args[2], Options)
                              : commandAnalyze(Args[1], Args[2], Options);
  }

  std::cerr << "error: unknown command '" << Command << "'\n";
  printUsage(std::cerr);
  return 1;
}
