//===- tools/ccprof.cpp - Command-line driver ------------------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The command-line face of the library, standing in for the artifact's
// ccProf_run_and_analyze.sh workflow:
//
//   ccprof list
//   ccprof profile <workload> [--optimized] [--exact] [--period N]
//                  [--sampler bursty|jitter|fixed] [--threshold N]
//                  [--level l1|l2] [--mapping identity|firsttouch|shuffled]
//                  [--csv]
//   ccprof compare <workload> [profile options]
//   ccprof trace <workload> <file> [--optimized]
//   ccprof analyze <file> <workload> [profile options]
//   ccprof analyze <workload> [--optimized] [--threshold N] [--json]
//                  [--artifact FILE]         (static prediction, no trace)
//
// plus the batch-profiling pipeline over persistent artifacts:
//
//   ccprof batch <workloads|all> [--jobs N] [--out DIR] [--periods A,B]
//                [--levels l1,l2] [--mappings M,N] [--variants V,W]
//                [--repeats R] [--stamp] [profile options]
//   ccprof merge <artifact|dir...> [--out FILE]
//   ccprof diff <artifact-a> <artifact-b> [--tolerance X] [--check] [--json]
//   ccprof show <artifact|dir> [--json]
//   ccprof validate <artifact|dir...> [--clean-temps] [--temp-age SECS]
//
// and the ingest service (ccprofd):
//
//   ccprof serve [--store DIR] [--socket PATH] [--watch DIR] [--workers N]
//                [--queue N] [--poll-ms N] [--once] [--stats]
//   ccprof submit <files...> --socket PATH [--client NAME]
//
//===----------------------------------------------------------------------===//

#include "analysis/ConsistencyChecker.h"
#include "analysis/StaticConflictAnalyzer.h"
#include "core/Profiler.h"
#include "core/Report.h"
#include "pipeline/ArtifactStore.h"
#include "pipeline/Diff.h"
#include "pipeline/JobRunner.h"
#include "pipeline/Merge.h"
#include "service/Ccprofd.h"
#include "service/ServiceClient.h"
#include "sim/Cache.h"
#include "sim/MrcEngine.h"
#include "trace/Canonicalize.h"
#include "support/Json.h"
#include "support/Table.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

using namespace ccprof;

namespace {

void printUsage(std::ostream &Out) {
  Out << "usage: ccprof <command> [options]\n"
         "\n"
         "commands:\n"
         "  list                      list the built-in workloads\n"
         "  profile <workload>        run a workload and report conflicts\n"
         "  compare <workload>        profile original and optimized builds\n"
         "  trace <workload> <file>   record a memory trace to a file\n"
         "  analyze <file> <workload> profile a previously recorded trace\n"
         "  analyze <workload>        predict conflicts statically from the\n"
         "                            workload's access model (no trace, no\n"
         "                            simulation); --artifact FILE cross-"
         "checks\n"
         "                            the prediction against a measured "
         "profile\n"
         "  batch <workloads|all>     run a job matrix, write one artifact "
         "per job\n"
         "  mrc <workload>            single-pass miss-ratio curve: "
         "predicted miss\n"
         "                            ratio at every geometry from one "
         "trace walk\n"
         "  merge <artifact|dir...>   aggregate artifacts of repeated runs\n"
         "  diff <a> <b>              compare two artifacts, flag "
         "regressions\n"
         "  show <artifact|dir>       render stored artifact reports\n"
         "  validate <artifact|dir..> check artifacts for corruption "
         "(checksums,\n"
         "                            truncation, interrupted saves)\n"
         "  serve                     run the ccprofd ingest service "
         "(socket +\n"
         "                            drop-directory ingestion, rolling "
         "aggregates,\n"
         "                            fleet regression alerts)\n"
         "  submit <files...>         upload .ccpa/.cctr files to a "
         "running daemon\n"
         "\n"
         "profile options:\n"
         "  --optimized               use the padded/reordered build\n"
         "  --exact                   capture every miss (simulator-grade)\n"
         "  --period N                mean sampling period (default 1212)\n"
         "  --sampler KIND            bursty | jitter | fixed\n"
         "  --threshold N             short-RCD threshold (default 8)\n"
         "  --level L                 l1 (default) | l2\n"
         "  --mapping M               identity | firsttouch | shuffled\n"
         "  --csv                     emit the loop table as CSV\n"
         "\n"
         "batch options:\n"
         "  --jobs N                  worker threads (default 1)\n"
         "  --out DIR                 artifact directory (default "
         "ccprof-artifacts)\n"
         "  --periods A,B,..          sampling periods to sweep\n"
         "  --levels l1,l2            cache levels to sweep\n"
         "  --mappings M,N,..         page mappings to sweep\n"
         "  --variants orig,opt       workload variants to sweep\n"
         "  --repeats R               repeated runs per config (seeds "
         "R-perturbed)\n"
         "  --stamp                   record wall-clock provenance "
         "timestamps\n"
         "  --no-reuse                disable the shared-trace engine "
         "(one full\n"
         "                            simulation per job; output is "
         "byte-identical)\n"
         "  --stream-cache N          max resident miss streams "
         "(default 16)\n"
         "  --sim-threads N           total thread budget shared by "
         "workers and\n"
         "                            set-shard helpers (default: "
         "hardware cores;\n"
         "                            output is byte-identical at any "
         "value)\n"
         "  --shards K                force K set shards per simulation "
         "(default:\n"
         "                            one per granted thread)\n"
         "  --static-screen           skip a group's L1 jobs when the "
         "static\n"
         "                            analyzer proves every requested L1\n"
         "                            geometry conflict-free and the "
         "analytic\n"
         "                            reuse curve is stable around each "
         "swept\n"
         "                            point; non-skipped artifacts are\n"
         "                            byte-identical to an unscreened run\n"
         "  --mrc                     answer each group's L1 LRU jobs with "
         "one\n"
         "                            single-pass miss-ratio curve instead "
         "of one\n"
         "                            simulation per geometry; writes\n"
         "                            <workload>-<variant>.mrc.json next to "
         "the\n"
         "                            artifacts (exact simulation stays the\n"
         "                            default and the oracle)\n"
         "  --mrc-geoms G1,G2,..      extra SIZE/LINE/WAYS curve points "
         "(SIZE\n"
         "                            takes K/M suffixes; implies --mrc;\n"
         "                            default sweep 8K..128K at 64/8)\n"
         "  --mrc-sampled             SHARDS spatial sampling for the curve "
         "pass\n"
         "                            (implies --mrc)\n"
         "  --mrc-rate R              initial SHARDS rate in (0,1] "
         "(default 0.01;\n"
         "                            implies --mrc-sampled)\n"
         "  --mrc-reservoir N         SHARDS max tracked lines (default "
         "16384;\n"
         "                            implies --mrc-sampled)\n"
         "  --mrc-sample-shards S     split the SHARDS filter into S "
         "parallel\n"
         "                            hash-space shards (power of two; "
         "default 1;\n"
         "                            implies --mrc-sampled)\n"
         "  --no-partition-reuse      route each simulation's shard "
         "partition\n"
         "                            from scratch instead of reusing "
         "arenas\n"
         "                            across configs sharing an index "
         "geometry\n"
         "                            (output is byte-identical)\n"
         "  --partition-cache-mb N    byte budget of the route-once "
         "partition\n"
         "                            cache (default 256)\n"
         "\n"
         "mrc options:\n"
         "  --optimized               curve of the padded/reordered build\n"
         "  --geoms G1,G2,..          SIZE/LINE/WAYS points to report "
         "(default\n"
         "                            8K..128K at 64/8 plus the reference)\n"
         "  --reference SIZE/LINE/WAYS  exact per-set geometry (default "
         "32K/64/8)\n"
         "  --sampled                 SHARDS sampling (see --mrc-sampled)\n"
         "  --rate R / --reservoir N  SHARDS tuning (imply --sampled)\n"
         "  --sample-shards S         parallel SHARDS sub-filters (see\n"
         "                            --mrc-sample-shards; implies "
         "--sampled)\n"
         "  --check                   gate exact points against a "
         "simulator\n"
         "                            replay and sampled points against "
         "the exact\n"
         "                            curve (0.05 bound); exit nonzero on "
         "failure\n"
         "  --json                    emit the curve as JSON\n"
         "\n"
         "analyze (static) options:\n"
         "  --optimized               analyze the padded/reordered build\n"
         "  --threshold N             short-RCD threshold (default 8)\n"
         "  --json                    emit the prediction as JSON\n"
         "  --artifact FILE           cross-check against a stored profile\n"
         "  --mrc                     also emit analytically predicted "
         "per-loop\n"
         "                            and program miss-ratio curves; with\n"
         "                            --artifact, score them against "
         "measured\n"
         "                            stack distances (quantitative check)\n"
         "  --geoms G1,G2,..          SIZE/LINE/WAYS points the predicted "
         "curves\n"
         "                            are read out at (implies --mrc; "
         "default\n"
         "                            sweep 8K..128K at 64/8)\n"
         "\n"
         "validate options:\n"
         "  --clean-temps             delete stale .ccpa.tmp leftovers "
         "instead\n"
         "                            of only reporting them\n"
         "  --temp-age SECS           only reap temps at least this old "
         "(default\n"
         "                            60; 0 reaps unconditionally — only "
         "safe when\n"
         "                            no writer is live)\n"
         "\n"
         "merge/diff/show options:\n"
         "  --out FILE                write the merged artifact here\n"
         "  --tolerance X             cf drift tolerance (default 0.05)\n"
         "  --check                   exit nonzero when the diff finds "
         "regressions\n"
         "  --json                    emit the report/diff as JSON\n"
         "\n"
         "serve options:\n"
         "  --store DIR               service store root (default "
         "ccprofd-store)\n"
         "  --socket PATH             listen on this Unix-domain socket\n"
         "  --watch DIR               ingest *.ccpa/*.cctr dropped here\n"
         "  --workers N               ingest worker threads (default 1)\n"
         "  --queue N                 ingest queue capacity (default 64)\n"
         "  --poll-ms N               drop-directory poll interval "
         "(default 200)\n"
         "  --once                    drain the drop directory once and "
         "exit\n"
         "  --stats                   query a running daemon's /stats "
         "and exit\n"
         "\n"
         "submit options:\n"
         "  --socket PATH             daemon socket to upload to\n"
         "  --client NAME             accounting label (default: "
         "hostname-style\n"
         "                            'cli')\n";
}

/// Strict decimal parse of \p Value as an unsigned integer: every
/// character must be a digit and the value must fit uint64_t. The
/// atol-style partial, negative, and overflowing parses ("4x", "-3",
/// 2^64) are all rejected — a numeric flag either parses exactly or
/// errors, never silently truncates.
bool parseUnsignedArg(const std::string &Value, uint64_t &Out) {
  if (Value.empty())
    return false;
  const char *First = Value.data();
  const char *Last = First + Value.size();
  auto [Ptr, Ec] = std::from_chars(First, Last, Out, 10);
  return Ec == std::errc() && Ptr == Last;
}

/// Strict parse of a finite double; the whole string must be consumed.
bool parseDoubleArg(const std::string &Value, double &Out) {
  if (Value.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  Out = std::strtod(Value.c_str(), &End);
  return End == Value.c_str() + Value.size() && errno == 0 &&
         std::isfinite(Out);
}

struct CliOptions {
  bool Optimized = false;
  bool Exact = false;
  bool Csv = false;
  ProfileOptions Profile;
  bool Ok = true;
};

CliOptions parseOptions(const std::vector<std::string> &Args) {
  CliOptions Options;
  Options.Profile.Sampling.Kind = SamplingKind::Bursty;

  auto Fail = [&Options](const std::string &Message) {
    std::cerr << "error: " << Message << '\n';
    Options.Ok = false;
  };

  for (size_t I = 0; I < Args.size() && Options.Ok; ++I) {
    const std::string &Arg = Args[I];
    auto NextValue = [&]() -> std::string {
      if (I + 1 >= Args.size()) {
        Fail("missing value for " + Arg);
        return "";
      }
      return Args[++I];
    };

    if (Arg == "--optimized") {
      Options.Optimized = true;
    } else if (Arg == "--exact") {
      Options.Exact = true;
    } else if (Arg == "--csv") {
      Options.Csv = true;
    } else if (Arg == "--period") {
      std::string Value = NextValue();
      if (Options.Ok) {
        uint64_t Period = 0;
        if (!parseUnsignedArg(Value, Period) || Period == 0)
          Fail("--period must be a positive integer (got '" + Value + "')");
        else
          Options.Profile.Sampling.MeanPeriod = Period;
      }
    } else if (Arg == "--threshold") {
      std::string Value = NextValue();
      if (Options.Ok) {
        uint64_t Threshold = 0;
        if (!parseUnsignedArg(Value, Threshold) || Threshold == 0)
          Fail("--threshold must be a positive integer (got '" + Value +
               "')");
        else
          Options.Profile.RcdThreshold = Threshold;
      }
    } else if (Arg == "--sampler") {
      std::string Value = NextValue();
      if (Value == "bursty")
        Options.Profile.Sampling.Kind = SamplingKind::Bursty;
      else if (Value == "jitter")
        Options.Profile.Sampling.Kind = SamplingKind::UniformJitter;
      else if (Value == "fixed")
        Options.Profile.Sampling.Kind = SamplingKind::Fixed;
      else if (Options.Ok)
        Fail("unknown sampler '" + Value + "'");
    } else if (Arg == "--level") {
      std::string Value = NextValue();
      if (Value == "l1")
        Options.Profile.Level = ProfileLevel::L1;
      else if (Value == "l2")
        Options.Profile.Level = ProfileLevel::L2;
      else if (Options.Ok)
        Fail("unknown level '" + Value + "'");
    } else if (Arg == "--mapping") {
      std::string Value = NextValue();
      if (Value == "identity")
        Options.Profile.Mapping = PagePolicy::Identity;
      else if (Value == "firsttouch")
        Options.Profile.Mapping = PagePolicy::FirstTouch;
      else if (Value == "shuffled")
        Options.Profile.Mapping = PagePolicy::Shuffled;
      else if (Options.Ok)
        Fail("unknown mapping '" + Value + "'");
    } else {
      Fail("unknown option '" + Arg + "'");
    }
  }
  return Options;
}

int commandList() {
  TextTable Table({"name", "source", "expected"});
  for (const auto &W : makeCaseStudySuite())
    Table.addRow({W->name(), W->sourceFile(),
                  W->expectConflicts() ? "conflicts" : "clean"});
  Table.addSeparator();
  for (const auto &W : makeRodiniaSuite()) {
    if (W->name() == "NW")
      continue; // Already listed with the case studies.
    Table.addRow({W->name(), W->sourceFile(),
                  W->expectConflicts() ? "conflicts" : "clean"});
  }
  Table.addSeparator();
  Table.addRow({"Symmetrization", "symm.cpp", "conflicts"});
  std::cout << Table.render();
  return 0;
}

/// Every name makeWorkloadByName accepts, comma-joined for error
/// messages (the `list` command renders the full table).
std::string availableWorkloadNames() {
  std::string Out = "Symmetrization";
  for (const auto &W : makeCaseStudySuite())
    Out += ", " + W->name();
  for (const auto &W : makeRodiniaSuite()) {
    if (W->name() == "NW")
      continue; // Already listed with the case studies.
    Out += ", " + W->name();
  }
  return Out;
}

/// Shared workload lookup of the trace/analyze/profile/mrc commands:
/// resolves \p Name or prints the available names on stderr.
std::unique_ptr<Workload> lookupWorkload(const std::string &Name) {
  std::unique_ptr<Workload> W = makeWorkloadByName(Name);
  if (!W)
    std::cerr << "error: unknown workload '" << Name
              << "'; available: " << availableWorkloadNames() << '\n';
  return W;
}

ProfileResult runPipeline(const Workload &W, const Trace &T,
                          const CliOptions &Options) {
  BinaryImage Image = W.makeBinary();
  ProgramStructure Structure(Image);
  Profiler P(Options.Profile);
  return Options.Exact ? P.profileExact(T, Structure)
                       : P.profile(T, Structure);
}

void emitResult(const ProfileResult &Result, const std::string &Name,
                const CliOptions &Options) {
  if (!Options.Csv) {
    std::cout << renderProfileReport(Result, Name);
    return;
  }
  TextTable Table({"loop", "samples", "miss_contribution", "sets",
                   "cf", "median_rcd", "p_conflict", "verdict"});
  for (const LoopConflictReport &Loop : Result.Loops)
    Table.addRow({Loop.Location, std::to_string(Loop.Samples),
                  fmt::fixed(Loop.MissContribution, 6),
                  std::to_string(Loop.SetsUtilized),
                  fmt::fixed(Loop.ContributionFactor, 6),
                  std::to_string(Loop.MedianRcd),
                  fmt::fixed(Loop.ConflictProbability, 4),
                  Loop.ConflictPredicted ? "conflict" : "clean"});
  std::cout << Table.renderCsv();
}

int commandProfile(const std::string &Name, const CliOptions &Options) {
  std::unique_ptr<Workload> W = lookupWorkload(Name);
  if (!W)
    return 1;
  Trace T;
  W->run(Options.Optimized ? WorkloadVariant::Optimized
                           : WorkloadVariant::Original,
         &T);
  emitResult(runPipeline(*W, T, Options), W->name(), Options);
  return 0;
}

int commandCompare(const std::string &Name, const CliOptions &Options) {
  std::unique_ptr<Workload> W = lookupWorkload(Name);
  if (!W)
    return 1;
  for (WorkloadVariant Variant :
       {WorkloadVariant::Original, WorkloadVariant::Optimized}) {
    Trace T;
    W->run(Variant, &T);
    ProfileResult Result = runPipeline(*W, T, Options);
    std::cout << "=== " << W->name() << " ("
              << (Variant == WorkloadVariant::Original ? "original"
                                                        : "optimized")
              << ") ===\n";
    emitResult(Result, W->name(), Options);
    std::cout << '\n';
  }
  return 0;
}

int commandTrace(const std::string &Name, const std::string &Path,
                 const CliOptions &Options) {
  std::unique_ptr<Workload> W = lookupWorkload(Name);
  if (!W)
    return 1;
  Trace T;
  W->run(Options.Optimized ? WorkloadVariant::Optimized
                           : WorkloadVariant::Original,
         &T);
  std::ofstream Out(Path, std::ios::binary);
  if (!Out || !T.writeTo(Out)) {
    std::cerr << "error: cannot write trace to " << Path << '\n';
    return 1;
  }
  std::cout << "wrote " << T.size() << " records to " << Path << '\n';
  return 0;
}

int commandAnalyze(const std::string &Path, const std::string &Name,
                   const CliOptions &Options) {
  std::unique_ptr<Workload> W = lookupWorkload(Name);
  if (!W)
    return 1;
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::cerr << "error: cannot open " << Path << '\n';
    return 1;
  }
  Trace T;
  std::string Reason;
  if (!Trace::readFrom(In, T, &Reason)) {
    std::cerr << "error: cannot read trace from " << Path << ": " << Reason
              << '\n';
    return 1;
  }
  emitResult(runPipeline(*W, T, Options), W->name() + " (from trace)",
             Options);
  return 0;
}

//===----------------------------------------------------------------------===//
// Static analysis command
//===----------------------------------------------------------------------===//

std::string joinSets(const std::vector<uint32_t> &Sets, size_t MaxShown = 8) {
  std::string Out;
  for (size_t I = 0; I < Sets.size() && I < MaxShown; ++I) {
    if (I)
      Out += ',';
    Out += std::to_string(Sets[I]);
  }
  if (Sets.size() > MaxShown)
    Out += ",+" + std::to_string(Sets.size() - MaxShown);
  return Out;
}

void emitStaticText(const StaticAnalysisResult &Result,
                    const std::string &Name) {
  std::cout << "=== " << Name << ": static conflict prediction ===\n"
            << "geometry: " << Result.Geometry.sizeBytes() / 1024 << "KiB/"
            << Result.Geometry.lineBytes() << "B/"
            << Result.Geometry.associativity() << "-way, "
            << Result.Geometry.numSets() << " sets; model "
            << (Result.ModelComplete ? "complete" : "partial") << ", "
            << Result.TotalAccesses << " modeled access(es), "
            << Result.PredictedMisses << " predicted miss(es)\n";
  TextTable Table({"loop", "accesses", "pred_misses", "cold", "victims",
                   "cf", "median_rcd", "p_conflict", "verdict"});
  for (const LoopPrediction &Loop : Result.Loops) {
    std::string Verdict = Loop.ConflictPredicted ? "conflict" : "clean";
    if (Loop.Truncated)
      Verdict += "*";
    Table.addRow(
        {Loop.Location, std::to_string(Loop.Accesses),
         std::to_string(Loop.PredictedConflictMisses +
                        Loop.PredictedColdMisses),
         std::to_string(Loop.PredictedColdMisses),
         Loop.VictimSets.empty()
             ? "-"
             : std::to_string(Loop.VictimSets.size()) + " (" +
                   joinSets(Loop.VictimSets) + ")",
         fmt::fixed(Loop.PredictedContributionFactor, 4),
         fmt::fixed(Loop.PredictedMedianRcd, 1),
         fmt::fixed(Loop.ConflictProbability, 4), Verdict});
  }
  std::cout << Table.render();
  std::cout << "static verdict: "
            << (Result.conflictFree() ? "conflict-free"
                                      : "conflicts predicted")
            << '\n';
}

/// Short "32K/64/8" label for MRC tables and JSON.
std::string geometryLabel(const CacheGeometry &G) {
  return std::to_string(G.sizeBytes() / 1024) + "K/" +
         std::to_string(G.lineBytes()) + "/" +
         std::to_string(G.associativity());
}

std::string mrcPointsJson(const std::vector<PredictedMrcPoint> &Points) {
  std::string Out = "[";
  for (size_t I = 0; I < Points.size(); ++I) {
    if (I)
      Out += ", ";
    Out += "{\"geometry\": \"" + geometryLabel(Points[I].Geometry) +
           "\", \"miss_ratio\": " + fmt::fixed(Points[I].MissRatio, 6) + "}";
  }
  return Out + "]";
}

void emitPredictedMrcText(const StaticAnalysisResult &Result) {
  std::cout << "=== predicted miss-ratio curves (analytic) ===\n";
  std::vector<std::string> Header{"loop"};
  for (const PredictedMrcPoint &Point : Result.ProgramMrc)
    Header.push_back(geometryLabel(Point.Geometry));
  TextTable Table(Header);
  for (const LoopPrediction &Loop : Result.Loops) {
    std::vector<std::string> Row{Loop.Location};
    for (const PredictedMrcPoint &Point : Loop.PredictedMrc)
      Row.push_back(fmt::fixed(Point.MissRatio, 4));
    Table.addRow(Row);
  }
  std::vector<std::string> Program{"<program>"};
  for (const PredictedMrcPoint &Point : Result.ProgramMrc)
    Program.push_back(fmt::fixed(Point.MissRatio, 4));
  Table.addSeparator();
  Table.addRow(Program);
  std::cout << Table.render();
  if (!Result.ReuseExactPlacement)
    std::cout << "note: placement is partly synthetic — curves are "
                 "approximate\n";
}

void emitStaticJson(const StaticAnalysisResult &Result,
                    const std::string &Name,
                    const ConsistencyReport *Consistency, bool ShowMrc) {
  std::ostream &Out = std::cout;
  Out << "{\n  \"workload\": \"" << Name << "\",\n"
      << "  \"model_complete\": "
      << (Result.ModelComplete ? "true" : "false") << ",\n"
      << "  \"conflict_free\": "
      << (Result.conflictFree() ? "true" : "false") << ",\n"
      << "  \"reuse_estimated\": "
      << (Result.ReuseEstimated ? "true" : "false") << ",\n"
      << "  \"reuse_exact_placement\": "
      << (Result.ReuseExactPlacement ? "true" : "false") << ",\n"
      << "  \"total_accesses\": " << Result.TotalAccesses << ",\n"
      << "  \"predicted_misses\": " << Result.PredictedMisses << ",\n"
      << "  \"loops\": [\n";
  for (size_t I = 0; I < Result.Loops.size(); ++I) {
    const LoopPrediction &Loop = Result.Loops[I];
    Out << "    {\"loop\": \"" << Loop.Location << "\", \"accesses\": "
        << Loop.Accesses << ", \"predicted_conflict_misses\": "
        << Loop.PredictedConflictMisses << ", \"predicted_cold_misses\": "
        << Loop.PredictedColdMisses << ", \"victim_sets\": ["
        << joinSets(Loop.VictimSets, Loop.VictimSets.size())
        << "], \"contribution_factor\": "
        << fmt::fixed(Loop.PredictedContributionFactor, 6)
        << ", \"median_rcd\": " << fmt::fixed(Loop.PredictedMedianRcd, 1)
        << ", \"p_conflict\": " << fmt::fixed(Loop.ConflictProbability, 6)
        << ", \"conflict\": " << (Loop.ConflictPredicted ? "true" : "false")
        << ", \"exact_placement\": "
        << (Loop.ExactPlacement ? "true" : "false") << ", \"truncated\": "
        << (Loop.Truncated ? "true" : "false");
    if (ShowMrc)
      Out << ", \"predicted_mrc\": " << mrcPointsJson(Loop.PredictedMrc);
    Out << "}" << (I + 1 < Result.Loops.size() ? "," : "") << '\n';
  }
  Out << "  ]";
  if (ShowMrc)
    Out << ",\n  \"predicted_mrc\": " << mrcPointsJson(Result.ProgramMrc);
  if (Consistency) {
    Out << ",\n  \"consistency\": {\n    \"consistent\": "
        << (Consistency->consistent() ? "true" : "false")
        << ",\n    \"confirmed\": " << Consistency->Confirmed
        << ", \"static_only\": " << Consistency->StaticOnly
        << ", \"measured_only\": " << Consistency->MeasuredOnly
        << ", \"contradicted\": " << Consistency->Contradicted;
    if (Consistency->HasProgramMrc)
      Out << ",\n    \"program_mrc_max_abs_error\": "
          << fmt::fixed(Consistency->ProgramMrcMaxAbsError, 6)
          << ", \"program_mrc_mean_abs_error\": "
          << fmt::fixed(Consistency->ProgramMrcMeanAbsError, 6)
          << ", \"program_mrc_contradicted\": "
          << (Consistency->ProgramMrcContradicted ? "true" : "false");
    Out << ",\n    \"loops\": [\n";
    for (size_t I = 0; I < Consistency->Loops.size(); ++I) {
      const LoopConsistency &Loop = Consistency->Loops[I];
      Out << "      {\"loop\": \"" << Loop.Location << "\", \"verdict\": \""
          << consistencyVerdictName(Loop.Verdict)
          << "\", \"victim_agreement\": "
          << fmt::fixed(Loop.VictimSetAgreement, 4);
      if (Loop.HasMrc)
        Out << ", \"mrc_points\": " << Loop.MrcPoints
            << ", \"mrc_max_abs_error\": "
            << fmt::fixed(Loop.MrcMaxAbsError, 6)
            << ", \"mrc_mean_abs_error\": "
            << fmt::fixed(Loop.MrcMeanAbsError, 6);
      Out << "}" << (I + 1 < Consistency->Loops.size() ? "," : "") << '\n';
    }
    Out << "    ]\n  }";
  }
  Out << "\n}\n";
}

void emitConsistencyText(const ConsistencyReport &Report) {
  std::cout << "=== static vs measured consistency ===\n";
  TextTable Table({"loop", "static", "measured", "victim_agreement",
                   "verdict", "note"});
  for (const LoopConsistency &Loop : Report.Loops)
    Table.addRow({Loop.Location,
                  Loop.HasStatic
                      ? (Loop.StaticConflict ? "conflict" : "clean")
                      : "-",
                  Loop.HasMeasured
                      ? (Loop.MeasuredConflict ? "conflict" : "clean")
                      : "-",
                  fmt::fixed(Loop.VictimSetAgreement, 2),
                  consistencyVerdictName(Loop.Verdict), Loop.Note});
  std::cout << Table.render();
  std::cout << "consistency: " << Report.Confirmed << " confirmed, "
            << Report.StaticOnly << " static-only, " << Report.MeasuredOnly
            << " measured-only, " << Report.Contradicted
            << " contradicted\n";
  if (!Report.consistent())
    std::cout << "warning: measurement contradicts the access model under "
                 "exact placement — the model mis-states a stride, trip "
                 "count, or allocation\n";
}

bool parseGeometrySpec(const std::string &Spec,
                       std::vector<CacheGeometry> &Out, std::string &Error);
std::vector<std::string> splitList(const std::string &Value);

int commandStaticAnalyze(const std::string &Name,
                         const std::vector<std::string> &Args) {
  bool Optimized = false, Json = false, Mrc = false;
  uint64_t Threshold = ConflictClassifier::DefaultRcdThreshold;
  std::string ArtifactPath;
  std::vector<CacheGeometry> Geoms;
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    if (Arg == "--optimized") {
      Optimized = true;
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--mrc") {
      Mrc = true;
    } else if (Arg == "--threshold" || Arg == "--artifact" ||
               Arg == "--geoms") {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: missing value for " << Arg << '\n';
        return 1;
      }
      const std::string Value = Args[++I];
      if (Arg == "--artifact") {
        ArtifactPath = Value;
      } else if (Arg == "--geoms") {
        Mrc = true; // --geoms implies --mrc
        std::string Error;
        for (const std::string &Spec : splitList(Value))
          if (!parseGeometrySpec(Spec, Geoms, Error)) {
            std::cerr << "error: bad --geoms entry '" << Spec
                      << "': " << Error << '\n';
            return 1;
          }
        if (Geoms.empty()) {
          std::cerr << "error: --geoms needs at least one SIZE/LINE/WAYS "
                       "spec (got '"
                    << Value << "')\n";
          return 1;
        }
      } else {
        if (!parseUnsignedArg(Value, Threshold) || Threshold == 0) {
          std::cerr << "error: --threshold must be a positive integer "
                       "(got '"
                    << Value << "')\n";
          return 1;
        }
      }
    } else {
      std::cerr << "error: unknown analyze option '" << Arg << "'\n";
      return 1;
    }
  }

  std::unique_ptr<Workload> W = lookupWorkload(Name);
  if (!W)
    return 1;
  const WorkloadVariant Variant =
      Optimized ? WorkloadVariant::Optimized : WorkloadVariant::Original;
  StaticAccessModel Model = W->accessModel(Variant);
  if (Model.empty()) {
    std::cerr << "error: workload '" << Name
              << "' declares no static access model\n";
    return 1;
  }

  BinaryImage Image = W->makeBinary();
  ProgramStructure Structure(Image);
  StaticConflictAnalyzer::Options Opts;
  Opts.RcdThreshold = Threshold;
  if (!Geoms.empty())
    Opts.MrcGeometries = Geoms;
  StaticAnalysisResult Result =
      StaticConflictAnalyzer(Opts).analyze(Model, &Structure);

  ConsistencyReport Consistency;
  bool HaveConsistency = false;
  if (!ArtifactPath.empty()) {
    ProfileArtifact Artifact;
    std::string Error;
    if (!ProfileArtifact::loadFromFile(ArtifactPath, Artifact, &Error)) {
      std::cerr << "error: " << Error << '\n';
      return 1;
    }
    if (Mrc) {
      // Quantitative check: re-trace the workload and score the
      // predicted curves against measured global stack distances.
      Trace Recorded;
      W->run(Variant, &Recorded);
      const Trace T = canonicalizeTrace(Recorded);
      const MeasuredCurves Curves = ConsistencyChecker::measuredCurvesFromTrace(
          T, &Structure, Opts.Geometry);
      Consistency = ConsistencyChecker().check(Result, Artifact.Result,
                                               &Curves);
    } else {
      Consistency = ConsistencyChecker().check(Result, Artifact.Result);
    }
    HaveConsistency = true;
  }

  if (Json) {
    emitStaticJson(Result, W->name(),
                   HaveConsistency ? &Consistency : nullptr, Mrc);
  } else {
    emitStaticText(Result, W->name());
    if (Mrc) {
      std::cout << '\n';
      emitPredictedMrcText(Result);
    }
    if (HaveConsistency) {
      std::cout << '\n';
      emitConsistencyText(Consistency);
      if (Consistency.HasProgramMrc)
        std::cout << "program mrc divergence: max "
                  << fmt::fixed(Consistency.ProgramMrcMaxAbsError, 4)
                  << ", mean "
                  << fmt::fixed(Consistency.ProgramMrcMeanAbsError, 4)
                  << (Consistency.ProgramMrcContradicted
                          ? " — CONTRADICTED"
                          : "")
                  << '\n';
    }
  }
  return HaveConsistency && !Consistency.consistent() ? 2 : 0;
}

//===----------------------------------------------------------------------===//
// Batch pipeline commands
//===----------------------------------------------------------------------===//

std::vector<std::string> splitList(const std::string &Value) {
  std::vector<std::string> Parts;
  std::stringstream Stream(Value);
  std::string Part;
  while (std::getline(Stream, Part, ','))
    if (!Part.empty())
      Parts.push_back(Part);
  return Parts;
}

/// Parses a "SIZE/LINE/WAYS" geometry spec (SIZE accepts a K or M
/// suffix, e.g. "32K/64/8") and appends it to \p Out. The shape is
/// validated here — line size a power of two, 1..64 ways, size
/// divisible by line*ways — so a bad spec is a CLI error, not an
/// assertion inside CacheGeometry.
bool parseGeometrySpec(const std::string &Spec,
                       std::vector<CacheGeometry> &Out, std::string &Error) {
  std::vector<std::string> Parts;
  std::stringstream Stream(Spec);
  std::string Part;
  while (std::getline(Stream, Part, '/'))
    Parts.push_back(Part);
  if (Parts.size() != 3) {
    Error = "geometry '" + Spec + "' is not SIZE/LINE/WAYS";
    return false;
  }
  uint64_t Multiplier = 1;
  std::string SizePart = Parts[0];
  if (!SizePart.empty() &&
      (SizePart.back() == 'K' || SizePart.back() == 'k' ||
       SizePart.back() == 'M' || SizePart.back() == 'm')) {
    Multiplier = (SizePart.back() == 'K' || SizePart.back() == 'k')
                     ? 1024
                     : 1024 * 1024;
    SizePart.pop_back();
  }
  uint64_t Size = 0, Line = 0, Ways = 0;
  if (!parseUnsignedArg(SizePart, Size) || !parseUnsignedArg(Parts[1], Line) ||
      !parseUnsignedArg(Parts[2], Ways) || Size == 0 || Line == 0 ||
      Ways == 0) {
    Error = "geometry '" + Spec + "' has a non-numeric or zero field";
    return false;
  }
  Size *= Multiplier;
  if ((Line & (Line - 1)) != 0 || Line > std::numeric_limits<uint32_t>::max()) {
    Error = "geometry '" + Spec + "': line size must be a power of two";
    return false;
  }
  if (Ways > 64) {
    Error = "geometry '" + Spec + "': at most 64 ways are supported";
    return false;
  }
  if (Size % (Line * Ways) != 0) {
    Error = "geometry '" + Spec +
            "': size must be divisible by line * ways";
    return false;
  }
  Out.push_back(CacheGeometry(Size, static_cast<uint32_t>(Line),
                              static_cast<uint32_t>(Ways)));
  return true;
}

/// The default geometry ladder `mrc` and `batch --mrc` sample when no
/// --geoms/--mrc-geoms is given: an L1 size sweep around the paper's
/// 32KiB/64B/8-way point.
std::vector<CacheGeometry> defaultMrcSweep() {
  std::vector<CacheGeometry> Sweep;
  for (uint64_t KiB : {8, 16, 32, 64, 128})
    Sweep.push_back(CacheGeometry(KiB * 1024, 64, 8));
  return Sweep;
}

struct BatchCliOptions {
  BatchMatrix Matrix;
  unsigned Jobs = 1;
  std::string OutDir = "ccprof-artifacts";
  bool Stamp = false;
  /// Shared-trace engine on by default; --no-reuse restores the naive
  /// one-simulation-per-job path (mainly for A/B measurement).
  bool Reuse = true;
  size_t StreamCacheEntries = MissStreamCache::DefaultMaxEntries;
  /// Total thread budget (workers + shard helpers); 0 = hardware cores.
  unsigned SimThreads = 0;
  /// Forced set-shard count per simulation; 0 = one per granted thread.
  unsigned Shards = 0;
  /// Skip L1 jobs the static analyzer proves conflict-free.
  bool StaticScreen = false;
  /// Route L1 LRU jobs through one single-pass miss-ratio curve per
  /// group instead of per-config simulations (any --mrc-* flag
  /// implies this).
  bool Mrc = false;
  /// SHARDS sampling for the MRC pass.
  bool MrcSampled = false;
  double MrcRate = 0.01;
  size_t MrcReservoir = 16384;
  uint32_t MrcSampleShards = 1;
  /// Route-once partition reuse across same-index-geometry configs;
  /// --no-partition-reuse restores per-config routing (for A/B
  /// measurement — output is byte-identical).
  bool PartitionReuse = true;
  size_t PartitionCacheMb = PartitionCache::DefaultMaxBytes >> 20;
  /// Extra geometries to sample each curve at; defaultMrcSweep() when
  /// left empty.
  std::vector<CacheGeometry> MrcSweep;
  bool Ok = true;
};

BatchCliOptions parseBatchOptions(const std::vector<std::string> &Args) {
  BatchCliOptions Options;
  auto Fail = [&Options](const std::string &Message) {
    std::cerr << "error: " << Message << '\n';
    Options.Ok = false;
  };

  for (size_t I = 0; I < Args.size() && Options.Ok; ++I) {
    const std::string &Arg = Args[I];
    auto NextValue = [&]() -> std::string {
      if (I + 1 >= Args.size()) {
        Fail("missing value for " + Arg);
        return "";
      }
      return Args[++I];
    };
    auto ParsePositive = [&](const std::string &Value, const char *What,
                             auto &Slot) {
      using SlotType = std::remove_reference_t<decltype(Slot)>;
      uint64_t Parsed = 0;
      if (!parseUnsignedArg(Value, Parsed) || Parsed == 0 ||
          Parsed > std::numeric_limits<SlotType>::max())
        Fail(std::string(What) + " must be a positive integer (got '" +
             Value + "')");
      else
        Slot = static_cast<SlotType>(Parsed);
    };

    if (Arg == "--jobs") {
      std::string Value = NextValue();
      if (Options.Ok)
        ParsePositive(Value, "--jobs", Options.Jobs);
    } else if (Arg == "--out") {
      std::string Value = NextValue();
      if (Options.Ok)
        Options.OutDir = Value;
    } else if (Arg == "--repeats") {
      std::string Value = NextValue();
      if (Options.Ok)
        ParsePositive(Value, "--repeats", Options.Matrix.Repeats);
    } else if (Arg == "--threshold") {
      std::string Value = NextValue();
      if (Options.Ok)
        ParsePositive(Value, "--threshold", Options.Matrix.RcdThreshold);
    } else if (Arg == "--periods" || Arg == "--period") {
      std::string Value = NextValue();
      if (!Options.Ok)
        continue;
      Options.Matrix.Periods.clear();
      for (const std::string &Part : splitList(Value)) {
        uint64_t Period = 0;
        ParsePositive(Part, "--periods", Period);
        if (!Options.Ok)
          break;
        Options.Matrix.Periods.push_back(Period);
      }
      if (Options.Ok && Options.Matrix.Periods.empty())
        Fail("--periods needs at least one value");
    } else if (Arg == "--levels" || Arg == "--level") {
      std::string Value = NextValue();
      if (!Options.Ok)
        continue;
      Options.Matrix.Levels.clear();
      for (const std::string &Part : splitList(Value)) {
        if (Part == "l1")
          Options.Matrix.Levels.push_back(ProfileLevel::L1);
        else if (Part == "l2")
          Options.Matrix.Levels.push_back(ProfileLevel::L2);
        else
          Fail("unknown level '" + Part + "'");
      }
      if (Options.Ok && Options.Matrix.Levels.empty())
        Fail("--levels needs at least one value");
    } else if (Arg == "--mappings" || Arg == "--mapping") {
      std::string Value = NextValue();
      if (!Options.Ok)
        continue;
      Options.Matrix.Mappings.clear();
      for (const std::string &Part : splitList(Value)) {
        if (Part == "identity")
          Options.Matrix.Mappings.push_back(PagePolicy::Identity);
        else if (Part == "firsttouch")
          Options.Matrix.Mappings.push_back(PagePolicy::FirstTouch);
        else if (Part == "shuffled")
          Options.Matrix.Mappings.push_back(PagePolicy::Shuffled);
        else
          Fail("unknown mapping '" + Part + "'");
      }
      if (Options.Ok && Options.Matrix.Mappings.empty())
        Fail("--mappings needs at least one value");
    } else if (Arg == "--variants") {
      std::string Value = NextValue();
      if (!Options.Ok)
        continue;
      Options.Matrix.Variants.clear();
      for (const std::string &Part : splitList(Value)) {
        if (Part == "orig" || Part == "original")
          Options.Matrix.Variants.push_back(WorkloadVariant::Original);
        else if (Part == "opt" || Part == "optimized")
          Options.Matrix.Variants.push_back(WorkloadVariant::Optimized);
        else
          Fail("unknown variant '" + Part + "'");
      }
      if (Options.Ok && Options.Matrix.Variants.empty())
        Fail("--variants needs at least one value");
    } else if (Arg == "--sampler") {
      std::string Value = NextValue();
      if (Value == "bursty")
        Options.Matrix.Sampler = SamplingKind::Bursty;
      else if (Value == "jitter")
        Options.Matrix.Sampler = SamplingKind::UniformJitter;
      else if (Value == "fixed")
        Options.Matrix.Sampler = SamplingKind::Fixed;
      else if (Options.Ok)
        Fail("unknown sampler '" + Value + "'");
    } else if (Arg == "--exact") {
      Options.Matrix.Exact = true;
    } else if (Arg == "--stamp") {
      Options.Stamp = true;
    } else if (Arg == "--no-reuse") {
      Options.Reuse = false;
    } else if (Arg == "--stream-cache") {
      std::string Value = NextValue();
      if (Options.Ok)
        ParsePositive(Value, "--stream-cache", Options.StreamCacheEntries);
    } else if (Arg == "--sim-threads") {
      std::string Value = NextValue();
      if (Options.Ok)
        ParsePositive(Value, "--sim-threads", Options.SimThreads);
    } else if (Arg == "--shards") {
      std::string Value = NextValue();
      if (Options.Ok)
        ParsePositive(Value, "--shards", Options.Shards);
    } else if (Arg == "--static-screen") {
      Options.StaticScreen = true;
    } else if (Arg == "--mrc") {
      Options.Mrc = true;
    } else if (Arg == "--mrc-sampled") {
      Options.Mrc = true;
      Options.MrcSampled = true;
    } else if (Arg == "--mrc-rate") {
      std::string Value = NextValue();
      if (Options.Ok) {
        Options.Mrc = true;
        Options.MrcSampled = true;
        if (!parseDoubleArg(Value, Options.MrcRate) ||
            Options.MrcRate <= 0.0 || Options.MrcRate > 1.0)
          Fail("--mrc-rate must be in (0, 1] (got '" + Value + "')");
      }
    } else if (Arg == "--mrc-reservoir") {
      std::string Value = NextValue();
      if (Options.Ok) {
        Options.Mrc = true;
        Options.MrcSampled = true;
        ParsePositive(Value, "--mrc-reservoir", Options.MrcReservoir);
        if (Options.Ok && Options.MrcReservoir < 2)
          Fail("--mrc-reservoir must be at least 2");
      }
    } else if (Arg == "--mrc-sample-shards") {
      std::string Value = NextValue();
      if (Options.Ok) {
        Options.Mrc = true;
        Options.MrcSampled = true;
        ParsePositive(Value, "--mrc-sample-shards", Options.MrcSampleShards);
        if (Options.Ok && (Options.MrcSampleShards &
                           (Options.MrcSampleShards - 1)) != 0)
          Fail("--mrc-sample-shards must be a power of two");
      }
    } else if (Arg == "--no-partition-reuse") {
      Options.PartitionReuse = false;
    } else if (Arg == "--partition-cache-mb") {
      std::string Value = NextValue();
      if (Options.Ok)
        ParsePositive(Value, "--partition-cache-mb", Options.PartitionCacheMb);
    } else if (Arg == "--mrc-geoms") {
      std::string Value = NextValue();
      if (!Options.Ok)
        continue;
      Options.Mrc = true;
      std::string Error;
      for (const std::string &Spec : splitList(Value))
        if (!parseGeometrySpec(Spec, Options.MrcSweep, Error)) {
          Fail(Error);
          break;
        }
      if (Options.Ok && Options.MrcSweep.empty())
        Fail("--mrc-geoms needs at least one SIZE/LINE/WAYS spec");
    } else {
      Fail("unknown batch option '" + Arg + "'");
    }
  }
  return Options;
}

int commandBatch(const std::string &Selection,
                 const std::vector<std::string> &Args) {
  BatchCliOptions Options = parseBatchOptions(Args);
  if (!Options.Ok)
    return 1;
  if (Options.StaticScreen && !Options.Reuse) {
    std::cerr << "error: --static-screen requires the shared-trace engine "
                 "(drop --no-reuse)\n";
    return 1;
  }
  if (Options.Mrc && !Options.Reuse) {
    std::cerr << "error: --mrc requires the shared-trace engine "
                 "(drop --no-reuse)\n";
    return 1;
  }
  if (Options.Mrc && Options.MrcSweep.empty())
    Options.MrcSweep = defaultMrcSweep();

  if (Selection == "all") {
    Options.Matrix.Workloads = defaultBatchWorkloads();
  } else {
    Options.Matrix.Workloads = splitList(Selection);
    for (const std::string &Name : Options.Matrix.Workloads)
      if (!lookupWorkload(Name))
        return 1;
  }
  if (Options.Matrix.Workloads.empty()) {
    std::cerr << "error: no workloads selected\n";
    return 1;
  }

  std::vector<JobSpec> Jobs = expandMatrix(Options.Matrix);
  ArtifactStore Store(Options.OutDir);
  std::string Error;
  if (!Store.ensureExists(&Error)) {
    std::cerr << "error: " << Error << '\n';
    return 1;
  }

  const uint64_t Timestamp =
      Options.Stamp
          ? static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count())
          : 0;

  std::cout << "batch: " << Jobs.size() << " job(s) on " << Options.Jobs
            << " worker thread(s) -> " << Options.OutDir
            << (Options.Reuse ? " (shared-trace engine)" : " (naive, --no-reuse)")
            << '\n';

  auto Progress = [&](const JobOutcome &Outcome, size_t Done) {
    if (Outcome.Skipped)
      std::cout << "  [" << Done << "/" << Jobs.size() << "] skipped "
                << Outcome.Job.key() << " (statically conflict-free)\n";
    else if (Outcome.MrcPredicted)
      std::cout << "  [" << Done << "/" << Jobs.size() << "] mrc "
                << Outcome.Job.key() << " (one-pass curve prediction)\n";
    else if (Outcome.ok())
      std::cout << "  [" << Done << "/" << Jobs.size() << "] "
                << Outcome.Job.key() << '\n';
    else
      std::cout << "  [" << Done << "/" << Jobs.size() << "] FAILED "
                << Outcome.Job.key() << ": " << Outcome.Error << '\n';
  };

  size_t Failures = 0;
  std::vector<JobOutcome> Outcomes;
  SharedBatchStats Shared;
  std::vector<MrcGroupCurve> Curves;
  if (Options.Reuse) {
    MissStreamCache StreamCache(Options.StreamCacheEntries);
    BatchExecOptions Exec;
    Exec.Workers = Options.Jobs;
    Exec.SimThreads = Options.SimThreads;
    Exec.Shards = Options.Shards;
    Exec.StaticScreen = Options.StaticScreen;
    Exec.Mrc = Options.Mrc;
    Exec.MrcConfig.Sampled = Options.MrcSampled;
    Exec.MrcConfig.SampleRate = Options.MrcRate;
    Exec.MrcConfig.MaxSampledLines = Options.MrcReservoir;
    Exec.MrcConfig.SampleShards = Options.MrcSampleShards;
    Exec.MrcSweep = Options.MrcSweep;
    Exec.PartitionReuse = Options.PartitionReuse;
    Exec.PartitionCacheBytes = Options.PartitionCacheMb << 20;
    Outcomes = runJobsShared(Jobs, Exec, Timestamp, Progress, &StreamCache,
                             &Shared, &Curves);
  } else {
    Outcomes = runJobs(Jobs, Options.Jobs, Timestamp, Progress);
  }

  // Persist sequentially in job order: output listing and directory
  // contents are deterministic regardless of completion order.
  size_t Skipped = 0, Predicted = 0;
  for (const JobOutcome &Outcome : Outcomes) {
    if (Outcome.Skipped) {
      ++Skipped;
      continue;
    }
    if (Outcome.MrcPredicted) {
      ++Predicted;
      continue;
    }
    if (!Outcome.ok()) {
      ++Failures;
      continue;
    }
    if (Store.save(Outcome.Artifact, &Error).empty()) {
      std::cerr << "error: " << Error << '\n';
      ++Failures;
    }
  }

  // One curve file per (workload, variant) group, deterministic bytes:
  // group order is first-appearance order of the job list and every
  // number renders at fixed precision.
  for (const MrcGroupCurve &Curve : Curves) {
    std::string FileName = Curve.WorkloadName + '-' +
                           variantName(Curve.Variant) + ".mrc.json";
    for (char &C : FileName)
      if (!std::isalnum(static_cast<unsigned char>(C)) && C != '-' &&
          C != '_' && C != '.')
        C = '_';
    const std::string Path = Options.OutDir + '/' + FileName;
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << "{\n  \"workload\": " << json::quote(Curve.WorkloadName)
        << ",\n  \"variant\": " << json::quote(variantName(Curve.Variant))
        << ",\n  \"trace_refs\": " << Curve.TraceRefs
        << ",\n  \"sampled\": " << (Curve.Sampled ? "true" : "false")
        << ",\n  \"final_rate\": " << json::number(Curve.FinalRate, 8)
        << ",\n  \"routed_jobs\": " << Curve.RoutedJobs
        << ",\n  \"points\": [\n";
    for (size_t I = 0; I < Curve.Points.size(); ++I) {
      const MrcPoint &Point = Curve.Points[I];
      Out << "    {\"size_bytes\": " << Point.Geometry.sizeBytes()
          << ", \"line_bytes\": " << Point.Geometry.lineBytes()
          << ", \"ways\": " << Point.Geometry.associativity()
          << ", \"sets\": " << Point.Geometry.numSets()
          << ", \"miss_ratio\": " << json::number(Point.MissRatio, 9)
          << ", \"exact\": " << (Point.Exact ? "true" : "false") << "}"
          << (I + 1 < Curve.Points.size() ? "," : "") << '\n';
    }
    Out << "  ]\n}\n";
    if (!Out) {
      std::cerr << "error: cannot write " << Path << '\n';
      ++Failures;
    }
  }

  if (Options.Reuse) {
    const MissStreamCacheStats &S = Shared.Streams;
    std::cout << "batch: " << Shared.TraceGroups << " trace group(s); "
              << "miss-stream cache: " << S.Hits << " hit(s), " << S.Misses
              << " simulation(s), " << S.Evictions << " eviction(s)";
    if (Shared.ShardCacheReuses)
      std::cout << "; shard caches reused " << Shared.ShardCacheReuses
                << " time(s)";
    if (Shared.ShardedSims) {
      std::cout << "; " << Shared.ShardedSims << " sharded sim(s)";
      // An explicit --shards on an exhausted budget still shards, but
      // one thread replays every shard serially — call that out so a
      // sweep over --shards is not mistaken for parallel execution.
      if (Shared.UnhelpedShardedSims)
        std::cout << ", " << Shared.UnhelpedShardedSims
                  << " unhelped (serialized on one thread)";
    }
    if (Shared.PartitionBuilds || Shared.PartitionReuses)
      std::cout << "; partitions: " << Shared.PartitionBuilds
                << " routed, " << Shared.PartitionReuses
                << " reused (route once, replay many)";
    if (Options.StaticScreen)
      std::cout << "; static screen skipped " << Shared.StaticSkipped
                << " job(s) (" << Shared.StaticScreenedGroups
                << " whole group(s), " << Shared.StaticScreenRefusals
                << " refusal(s))";
    if (Options.Mrc)
      std::cout << "; mrc: " << Shared.MrcGroups << " curve(s) answered "
                << Shared.MrcRoutedJobs << " job(s) in one pass";
    std::cout << '\n';
    if (!S.Entries.empty()) {
      TextTable Streams({"stream", "hits", "events", "resident"});
      for (const MissStreamCacheEntryStats &E : S.Entries)
        Streams.addRow({E.Key, std::to_string(E.Hits),
                        std::to_string(E.Events), E.Resident ? "yes" : "no"});
      std::cout << Streams.render();
    }
  }

  std::cout << "batch: wrote "
            << (Outcomes.size() - Failures - Skipped - Predicted)
            << " artifact(s)";
  if (Skipped)
    std::cout << ", " << Skipped << " job(s) skipped";
  if (Predicted)
    std::cout << ", " << Predicted << " job(s) mrc-predicted across "
              << Curves.size() << " curve(s)";
  if (Failures)
    std::cout << ", " << Failures << " job(s) failed";
  std::cout << '\n';
  return Failures == 0 ? 0 : 1;
}

/// Expands \p PathArg into artifact paths: a directory contributes its
/// store listing (a listing error or an artifact-free directory is an
/// error — never silently "empty"), anything else passes through as a
/// file path. \returns false with \p Error set on failure.
bool collectArtifactPaths(const std::string &PathArg,
                          std::vector<std::string> &Paths,
                          std::string &Error) {
  std::error_code Ec;
  if (!std::filesystem::is_directory(PathArg, Ec)) {
    Paths.push_back(PathArg);
    return true;
  }
  ArtifactStore Store(PathArg);
  std::string ListError;
  std::vector<std::string> Listed = Store.list(&ListError);
  if (!ListError.empty()) {
    Error = ListError;
    return false;
  }
  if (Listed.empty()) {
    Error = "no " + std::string(ArtifactExtension) + " artifacts in " +
            PathArg;
    return false;
  }
  Paths.insert(Paths.end(), Listed.begin(), Listed.end());
  return true;
}

int commandMerge(const std::vector<std::string> &Args) {
  std::vector<std::string> Paths;
  std::string OutPath;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (Args[I] == "--out") {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: missing value for --out\n";
        return 1;
      }
      OutPath = Args[++I];
    } else {
      std::string Error;
      if (!collectArtifactPaths(Args[I], Paths, Error)) {
        std::cerr << "error: " << Error << '\n';
        return 1;
      }
    }
  }
  if (Paths.empty()) {
    std::cerr << "error: merge needs at least one artifact\n";
    return 1;
  }

  std::vector<ProfileArtifact> Artifacts(Paths.size());
  for (size_t I = 0; I < Paths.size(); ++I) {
    std::string Error;
    if (!ProfileArtifact::loadFromFile(Paths[I], Artifacts[I], &Error)) {
      std::cerr << "error: " << Error << '\n';
      return 1;
    }
  }

  MergeResult Merged = mergeArtifacts(Artifacts);
  if (!Merged.ok()) {
    std::cerr << "error: " << Merged.Error << '\n';
    return 1;
  }

  if (!OutPath.empty()) {
    std::string Error;
    if (!Merged.Merged.saveToFile(OutPath, &Error)) {
      std::cerr << "error: " << Error << '\n';
      return 1;
    }
    std::cout << "merged " << Artifacts.size() << " artifact(s) ("
              << Merged.Merged.Provenance.MergedRuns << " run(s)) -> "
              << OutPath << '\n';
    return 0;
  }
  std::cout << renderProfileReport(
      Merged.Merged.Result,
      Merged.Merged.Provenance.Job.WorkloadName + " (merge of " +
          std::to_string(Merged.Merged.Provenance.MergedRuns) + " runs)");
  return 0;
}

int commandDiff(const std::vector<std::string> &Args) {
  std::vector<std::string> Paths;
  DiffOptions Options;
  bool Check = false;
  bool Json = false;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (Args[I] == "--tolerance") {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: missing value for --tolerance\n";
        return 1;
      }
      Options.CfTolerance = std::atof(Args[++I].c_str());
      if (Options.CfTolerance < 0) {
        std::cerr << "error: --tolerance must be non-negative\n";
        return 1;
      }
    } else if (Args[I] == "--check") {
      Check = true;
    } else if (Args[I] == "--json") {
      Json = true;
    } else {
      std::string Error;
      if (!collectArtifactPaths(Args[I], Paths, Error)) {
        std::cerr << "error: " << Error << '\n';
        return 1;
      }
    }
  }
  if (Paths.size() != 2) {
    std::cerr << "error: diff needs exactly two artifacts\n";
    return 1;
  }

  ProfileArtifact A, B;
  std::string Error;
  if (!ProfileArtifact::loadFromFile(Paths[0], A, &Error) ||
      !ProfileArtifact::loadFromFile(Paths[1], B, &Error)) {
    std::cerr << "error: " << Error << '\n';
    return 1;
  }

  DiffResult Diff = diffArtifacts(A, B, Options);
  std::cout << (Json ? renderDiffJson(Diff, Paths[0], Paths[1])
                     : renderDiff(Diff, Paths[0], Paths[1]));
  return Check && Diff.Regressions > 0 ? 2 : 0;
}

int commandShow(const std::vector<std::string> &Args) {
  bool Json = false;
  std::vector<std::string> PathArgs;
  for (const std::string &Arg : Args) {
    if (Arg == "--json")
      Json = true;
    else
      PathArgs.push_back(Arg);
  }
  if (PathArgs.size() != 1) {
    std::cerr << "error: show needs one artifact or directory path\n";
    return 1;
  }
  std::vector<std::string> Paths;
  std::string Error;
  if (!collectArtifactPaths(PathArgs[0], Paths, Error)) {
    std::cerr << "error: " << Error << '\n';
    return 1;
  }
  if (Json)
    std::cout << "[\n";
  for (size_t I = 0; I < Paths.size(); ++I) {
    ProfileArtifact Artifact;
    if (!ProfileArtifact::loadFromFile(Paths[I], Artifact, &Error)) {
      std::cerr << "error: " << Error << '\n';
      return 1;
    }
    const JobSpec &Job = Artifact.Provenance.Job;
    if (Json) {
      if (I)
        std::cout << ",\n";
      std::cout << "{\"artifact\": \"" << Job.key() << "\", \"format_version\": "
                << Artifact.FormatVersion << ", \"merged_runs\": "
                << Artifact.Provenance.MergedRuns << ", \"tool\": \""
                << Artifact.Provenance.Tool << "\",\n\"report\": "
                << renderProfileReportJson(Artifact.Result, Job.WorkloadName)
                << "}";
      continue;
    }
    if (I)
      std::cout << '\n';
    std::cout << "artifact: " << Job.key() << " (format v"
              << Artifact.FormatVersion << ", "
              << Artifact.Provenance.MergedRuns << " run(s), tool "
              << Artifact.Provenance.Tool << ")\n";
    std::cout << renderProfileReport(Artifact.Result, Job.WorkloadName);
  }
  if (Json)
    std::cout << "\n]\n";
  return 0;
}

int commandValidate(const std::vector<std::string> &Args) {
  size_t Checked = 0, Corrupt = 0, Stale = 0, Cleaned = 0;
  bool CleanTemps = false;
  unsigned TempAgeSeconds = ArtifactStore::DefaultTempReapAgeSeconds;
  std::vector<std::string> Paths;
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    if (Arg == "--clean-temps") {
      CleanTemps = true;
    } else if (Arg == "--temp-age") {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: missing value for --temp-age\n";
        return 1;
      }
      const std::string Value = Args[++I];
      uint64_t Parsed = 0;
      if (!parseUnsignedArg(Value, Parsed) ||
          Parsed > std::numeric_limits<unsigned>::max()) {
        std::cerr << "error: --temp-age must be a non-negative integer "
                     "(got '"
                  << Value << "')\n";
        return 1;
      }
      TempAgeSeconds = static_cast<unsigned>(Parsed);
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.empty()) {
    std::cerr << "error: validate needs at least one artifact or "
                 "directory path\n";
    return 1;
  }
  for (const std::string &Arg : Paths) {
    std::error_code Ec;
    if (std::filesystem::is_directory(Arg, Ec)) {
      ArtifactStore Store(Arg);
      std::string Error;
      ArtifactValidationReport Report = Store.validate(&Error);
      if (!Error.empty()) {
        std::cerr << "error: " << Error << '\n';
        return 1;
      }
      Checked += Report.Checked;
      Corrupt += Report.Issues.size();
      Stale += Report.StaleTemporaries.size();
      for (const ArtifactValidationIssue &Issue : Report.Issues)
        std::cout << "FAIL " << Issue.Path << ": " << Issue.Reason << '\n';
      if (CleanTemps) {
        std::vector<std::string> Failed;
        std::vector<std::string> Removed =
            Store.cleanStaleTemporaries(&Failed, TempAgeSeconds);
        Cleaned += Removed.size();
        for (const std::string &Temp : Removed)
          std::cout << "cleaned " << Temp << '\n';
        for (const std::string &Failure : Failed)
          std::cout << "FAIL cleaning " << Failure << '\n';
        Corrupt += Failed.size();
      } else {
        for (const std::string &Temp : Report.StaleTemporaries)
          std::cout << "stale " << Temp
                    << ": leftover temp from an interrupted save (safe to "
                       "delete; rerun with --clean-temps to remove)\n";
      }
      continue;
    }
    ++Checked;
    ProfileArtifact Artifact;
    std::string Reason;
    std::ifstream In(Arg, std::ios::binary);
    if (!In) {
      ++Corrupt;
      std::cout << "FAIL " << Arg << ": cannot open for reading\n";
    } else if (!ProfileArtifact::readFrom(In, Artifact, &Reason)) {
      ++Corrupt;
      std::cout << "FAIL " << Arg << ": " << Reason << '\n';
    } else {
      std::cout << "ok   " << Arg << " (format v" << Artifact.FormatVersion
                << ", " << Artifact.Result.Loops.size() << " loop(s), "
                << Artifact.Provenance.MergedRuns << " run(s))\n";
    }
  }
  std::cout << "validate: " << Checked << " artifact(s), "
            << (Checked - std::min(Checked, Corrupt)) << " ok, " << Corrupt
            << " corrupt";
  if (Stale)
    std::cout << ", " << Stale << " stale temp(s)";
  if (Cleaned)
    std::cout << " (" << Cleaned << " cleaned)";
  std::cout << '\n';
  return Corrupt == 0 ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// Miss-ratio curve command
//===----------------------------------------------------------------------===//

/// `ccprof mrc <workload>`: one pass over the workload's canonicalized
/// trace, then the predicted miss ratio at every requested geometry.
/// --check replays the simulator at each exact-resolved point (must
/// match to float noise) and, for sampled curves, gates every point
/// against the exact curve at the documented SHARDS bound.
int commandMrc(const std::string &Name, const std::vector<std::string> &Args) {
  bool Optimized = false, Sampled = false, Json = false, Check = false;
  MrcOptions Opts;
  std::vector<CacheGeometry> Geometries;
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    auto NextValue = [&](const char *Flag) -> std::optional<std::string> {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: missing value for " << Flag << '\n';
        return std::nullopt;
      }
      return Args[++I];
    };
    if (Arg == "--optimized") {
      Optimized = true;
    } else if (Arg == "--sampled") {
      Sampled = true;
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--check") {
      Check = true;
    } else if (Arg == "--rate") {
      std::optional<std::string> Value = NextValue("--rate");
      if (!Value)
        return 1;
      double Parsed = 0.0;
      if (!parseDoubleArg(*Value, Parsed) || Parsed <= 0.0 || Parsed > 1.0) {
        std::cerr << "error: --rate must be a number in (0, 1] (got '"
                  << *Value << "')\n";
        return 1;
      }
      Sampled = true;
      Opts.SampleRate = Parsed;
    } else if (Arg == "--reservoir") {
      std::optional<std::string> Value = NextValue("--reservoir");
      if (!Value)
        return 1;
      uint64_t Parsed = 0;
      if (!parseUnsignedArg(*Value, Parsed) || Parsed < 2) {
        std::cerr << "error: --reservoir must be an integer >= 2 (got '"
                  << *Value << "')\n";
        return 1;
      }
      Sampled = true;
      Opts.MaxSampledLines = static_cast<size_t>(Parsed);
    } else if (Arg == "--sample-shards") {
      std::optional<std::string> Value = NextValue("--sample-shards");
      if (!Value)
        return 1;
      uint64_t Parsed = 0;
      if (!parseUnsignedArg(*Value, Parsed) || Parsed == 0 ||
          Parsed > 256 || (Parsed & (Parsed - 1)) != 0) {
        std::cerr << "error: --sample-shards must be a power of two in "
                     "[1, 256] (got '"
                  << *Value << "')\n";
        return 1;
      }
      Sampled = true;
      Opts.SampleShards = static_cast<uint32_t>(Parsed);
    } else if (Arg == "--reference") {
      std::optional<std::string> Value = NextValue("--reference");
      if (!Value)
        return 1;
      std::vector<CacheGeometry> Ref;
      std::string Error;
      if (!parseGeometrySpec(*Value, Ref, Error)) {
        std::cerr << "error: " << Error << '\n';
        return 1;
      }
      Opts.Reference = Ref.front();
    } else if (Arg == "--geoms") {
      std::optional<std::string> Value = NextValue("--geoms");
      if (!Value)
        return 1;
      std::string Error;
      for (const std::string &Spec : splitList(*Value)) {
        if (!parseGeometrySpec(Spec, Geometries, Error)) {
          std::cerr << "error: " << Error << '\n';
          return 1;
        }
      }
    } else {
      std::cerr << "error: unknown mrc option '" << Arg << "'\n";
      return 1;
    }
  }
  Opts.Sampled = Sampled;
  if (Geometries.empty())
    Geometries = defaultMrcSweep();
  // Always sample the reference geometry itself; sort + dedup so the
  // output order is canonical no matter how --geoms was spelled.
  Geometries.push_back(Opts.Reference);
  auto Shape = [](const CacheGeometry &G) {
    return std::tuple(G.sizeBytes(), G.lineBytes(), G.associativity());
  };
  std::sort(Geometries.begin(), Geometries.end(),
            [&](const CacheGeometry &A, const CacheGeometry &B) {
              return Shape(A) < Shape(B);
            });
  Geometries.erase(std::unique(Geometries.begin(), Geometries.end(),
                               [&](const CacheGeometry &A,
                                   const CacheGeometry &B) {
                                 return Shape(A) == Shape(B);
                               }),
                   Geometries.end());

  std::unique_ptr<Workload> W = lookupWorkload(Name);
  if (!W)
    return 1;
  const WorkloadVariant Variant =
      Optimized ? WorkloadVariant::Optimized : WorkloadVariant::Original;
  Trace Recorded;
  W->run(Variant, &Recorded);
  const Trace T = canonicalizeTrace(Recorded);

  const MissRatioCurve Curve = MrcEngine::compute(T, Opts);

  // --check oracles. Exact-resolved points must match a simulator
  // replay; sampled curves must sit within the documented bound of the
  // exact curve. Binomial-model points have no gate — the uniform-
  // mapping assumption they encode is exactly what conflict-heavy
  // workloads violate (that gap is the paper's subject, not a bug).
  constexpr double ExactTolerance = 1e-9;
  constexpr double ShardsBound = 0.05;
  std::optional<MissRatioCurve> ExactCurve;
  if (Check && Sampled) {
    MrcOptions ExactOpts = Opts;
    ExactOpts.Sampled = false;
    ExactCurve = MrcEngine::compute(T, ExactOpts);
  }
  size_t CheckFailures = 0;
  struct Row {
    CacheGeometry Geometry = CacheGeometry(32 * 1024, 64, 8);
    double MissRatio = 0.0;
    bool Exact = false;
    std::string CheckNote;
  };
  std::vector<Row> Rows;
  for (const CacheGeometry &G : Geometries) {
    Row R;
    R.Geometry = G;
    R.MissRatio = Curve.missRatioAt(G);
    R.Exact = Curve.isExactAt(G);
    if (Check) {
      if (R.Exact) {
        Cache Sim(G, ReplacementKind::Lru);
        for (const MemoryRecord &Rec : T.records())
          Sim.access(Rec.Addr, Rec.IsWrite);
        const double Simulated = Sim.stats().missRatio();
        if (std::fabs(Simulated - R.MissRatio) > ExactTolerance) {
          R.CheckNote = "FAIL sim=" + fmt::fixed(Simulated, 9);
          ++CheckFailures;
        } else {
          R.CheckNote = "ok (sim match)";
        }
      } else if (ExactCurve) {
        // Model-to-model: the sampled curve always reads through the
        // binomial model, so the bound is against the exact histogram
        // read the same way — the per-set/model gap is the conflict
        // signal, not sampling error.
        const double Exact = ExactCurve->modelMissRatioAt(G);
        const double Err = std::fabs(Exact - R.MissRatio);
        if (Err > ShardsBound) {
          R.CheckNote = "FAIL exact=" + fmt::fixed(Exact, 6) + " err=" +
                        fmt::fixed(Err, 6);
          ++CheckFailures;
        } else {
          R.CheckNote = "ok (err " + fmt::fixed(Err, 6) + ")";
        }
      } else {
        R.CheckNote = "model (ungated)";
      }
    }
    Rows.push_back(std::move(R));
  }

  if (Json) {
    std::cout << "{\n  \"workload\": " << json::quote(W->name())
              << ",\n  \"variant\": " << json::quote(variantName(Variant))
              << ",\n  \"trace_refs\": " << Curve.TotalRefs
              << ",\n  \"sampled\": " << (Curve.Sampled ? "true" : "false")
              << ",\n  \"final_rate\": " << json::number(Curve.FinalRate, 8)
              << ",\n  \"points\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      std::cout << "    {\"size_bytes\": " << R.Geometry.sizeBytes()
                << ", \"line_bytes\": " << R.Geometry.lineBytes()
                << ", \"ways\": " << R.Geometry.associativity()
                << ", \"sets\": " << R.Geometry.numSets()
                << ", \"miss_ratio\": " << json::number(R.MissRatio, 9)
                << ", \"exact\": " << (R.Exact ? "true" : "false");
      if (Check)
        std::cout << ", \"check\": " << json::quote(R.CheckNote);
      std::cout << "}" << (I + 1 < Rows.size() ? "," : "") << '\n';
    }
    std::cout << "  ]\n}\n";
  } else {
    std::cout << "mrc: " << W->name() << " (" << variantName(Variant) << "), "
              << Curve.TotalRefs << " ref(s), "
              << (Curve.Sampled
                      ? "SHARDS rate " + fmt::fixed(Curve.FinalRate, 6)
                      : std::string("exact"))
              << '\n';
    std::vector<std::string> Header = {"size",     "line", "ways",
                                       "sets",     "miss_ratio",
                                       "resolved"};
    if (Check)
      Header.push_back("check");
    TextTable Table(Header);
    for (const Row &R : Rows) {
      std::vector<std::string> Cells = {
          std::to_string(R.Geometry.sizeBytes()),
          std::to_string(R.Geometry.lineBytes()),
          std::to_string(R.Geometry.associativity()),
          std::to_string(R.Geometry.numSets()),
          fmt::fixed(R.MissRatio, 6),
          R.Exact ? "exact" : "model"};
      if (Check)
        Cells.push_back(R.CheckNote);
      Table.addRow(Cells);
    }
    std::cout << Table.render();
  }
  if (Check) {
    std::cout << "mrc check: "
              << (CheckFailures ? std::to_string(CheckFailures) +
                                      " point(s) FAILED"
                                : std::string("all gated points ok"))
              << '\n';
    return CheckFailures == 0 ? 0 : 1;
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// Service commands (ccprofd)
//===----------------------------------------------------------------------===//

std::atomic<bool> GServeStop{false};

void serveSignalHandler(int) { GServeStop.store(true); }

int commandServe(const std::vector<std::string> &Args) {
  ServiceConfig Config;
  bool StatsOnly = false;
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    auto NextValue = [&](std::string &Slot) {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: missing value for " << Arg << '\n';
        return false;
      }
      Slot = Args[++I];
      return true;
    };
    std::string Value;
    if (Arg == "--store") {
      if (!NextValue(Config.StoreDir))
        return 1;
    } else if (Arg == "--socket") {
      if (!NextValue(Config.SocketPath))
        return 1;
    } else if (Arg == "--watch") {
      if (!NextValue(Config.WatchDir))
        return 1;
    } else if (Arg == "--workers") {
      if (!NextValue(Value))
        return 1;
      uint64_t Parsed = 0;
      if (!parseUnsignedArg(Value, Parsed) || Parsed == 0 ||
          Parsed > std::numeric_limits<unsigned>::max()) {
        std::cerr << "error: --workers must be a positive integer (got '"
                  << Value << "')\n";
        return 1;
      }
      Config.Workers = static_cast<unsigned>(Parsed);
    } else if (Arg == "--queue") {
      if (!NextValue(Value))
        return 1;
      uint64_t Parsed = 0;
      if (!parseUnsignedArg(Value, Parsed) || Parsed == 0) {
        std::cerr << "error: --queue must be a positive integer (got '"
                  << Value << "')\n";
        return 1;
      }
      Config.QueueCapacity = static_cast<size_t>(Parsed);
    } else if (Arg == "--poll-ms") {
      if (!NextValue(Value))
        return 1;
      uint64_t Parsed = 0;
      if (!parseUnsignedArg(Value, Parsed) || Parsed == 0 ||
          Parsed > std::numeric_limits<unsigned>::max()) {
        std::cerr << "error: --poll-ms must be a positive integer (got '"
                  << Value << "')\n";
        return 1;
      }
      Config.PollMs = static_cast<unsigned>(Parsed);
    } else if (Arg == "--once") {
      Config.Once = true;
    } else if (Arg == "--stats") {
      StatsOnly = true;
    } else {
      std::cerr << "error: unknown serve option '" << Arg << "'\n";
      return 1;
    }
  }

  if (StatsOnly) {
    if (Config.SocketPath.empty()) {
      std::cerr << "error: --stats needs --socket PATH\n";
      return 1;
    }
    ServiceReply Reply = serviceQueryStats(Config.SocketPath);
    if (!Reply.Error.empty()) {
      std::cerr << "error: " << Reply.Error << '\n';
      return 1;
    }
    std::cout << Reply.Line << '\n';
    return 0;
  }

  if (Config.Once && Config.WatchDir.empty()) {
    std::cerr << "error: --once needs --watch DIR (it drains the drop "
                 "directory and exits)\n";
    return 1;
  }
  if (!Config.Once && Config.SocketPath.empty() && Config.WatchDir.empty()) {
    std::cerr << "error: serve needs at least one ingress surface "
                 "(--socket and/or --watch)\n";
    return 1;
  }

  Ccprofd Daemon(Config);
  Daemon.setAlertSink([](const RegressionAlert &Alert) {
    std::cout << "ALERT " << renderAlertJson(Alert) << std::endl;
  });

  std::string Error;
  if (Config.Once) {
    if (!Daemon.runOnce(&Error)) {
      std::cerr << "error: " << Error << '\n';
      return 1;
    }
    std::cout << Daemon.statsJson() << '\n';
    return 0;
  }

  if (!Daemon.start(&Error)) {
    std::cerr << "error: " << Error << '\n';
    return 1;
  }
  std::cout << "ccprofd: store " << Config.StoreDir;
  if (!Config.SocketPath.empty())
    std::cout << ", socket " << Config.SocketPath;
  if (!Config.WatchDir.empty())
    std::cout << ", watching " << Config.WatchDir;
  std::cout << " (" << std::max(1u, Config.Workers)
            << " worker(s); ^C to stop)" << std::endl;

  std::signal(SIGINT, serveSignalHandler);
  std::signal(SIGTERM, serveSignalHandler);
  while (!GServeStop.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Daemon.stop();
  std::cout << Daemon.statsJson() << '\n';
  return 0;
}

int commandSubmit(const std::vector<std::string> &Args) {
  std::string SocketPath;
  std::string Client = "cli";
  std::vector<std::string> Files;
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    if (Arg == "--socket" || Arg == "--client") {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: missing value for " << Arg << '\n';
        return 1;
      }
      (Arg == "--socket" ? SocketPath : Client) = Args[++I];
    } else {
      Files.push_back(Arg);
    }
  }
  if (SocketPath.empty()) {
    std::cerr << "error: submit needs --socket PATH\n";
    return 1;
  }
  if (Files.empty()) {
    std::cerr << "error: submit needs at least one .ccpa/.cctr file\n";
    return 1;
  }
  size_t Failures = 0;
  for (const std::string &File : Files) {
    const ServiceReply Reply = serviceSubmitFile(SocketPath, Client, File);
    if (!Reply.Error.empty()) {
      std::cerr << "error: " << File << ": " << Reply.Error << '\n';
      ++Failures;
    } else if (!Reply.Ok) {
      std::cerr << "error: " << File << ": daemon said: " << Reply.Line
                << '\n';
      ++Failures;
    } else {
      std::cout << File << ": " << Reply.Line << '\n';
    }
  }
  return Failures == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  if (Args.empty() || Args[0] == "--help" || Args[0] == "-h" ||
      Args[0] == "help") {
    printUsage(Args.empty() ? std::cerr : std::cout);
    return Args.empty() ? 1 : 0;
  }

  const std::string &Command = Args[0];
  if (Command == "list")
    return commandList();

  if (Command == "profile" || Command == "compare") {
    if (Args.size() < 2) {
      std::cerr << "error: " << Command << " needs a workload name\n";
      return 1;
    }
    CliOptions Options =
        parseOptions(std::vector<std::string>(Args.begin() + 2, Args.end()));
    if (!Options.Ok)
      return 1;
    return Command == "profile" ? commandProfile(Args[1], Options)
                                : commandCompare(Args[1], Options);
  }

  if (Command == "batch") {
    if (Args.size() < 2) {
      std::cerr << "error: batch needs a workload selection "
                   "(names or 'all')\n";
      return 1;
    }
    return commandBatch(
        Args[1], std::vector<std::string>(Args.begin() + 2, Args.end()));
  }

  if (Command == "mrc") {
    if (Args.size() < 2) {
      std::cerr << "error: mrc needs a workload name\n";
      return 1;
    }
    return commandMrc(
        Args[1], std::vector<std::string>(Args.begin() + 2, Args.end()));
  }

  if (Command == "merge")
    return commandMerge(
        std::vector<std::string>(Args.begin() + 1, Args.end()));

  if (Command == "diff")
    return commandDiff(
        std::vector<std::string>(Args.begin() + 1, Args.end()));

  if (Command == "show") {
    if (Args.size() < 2) {
      std::cerr << "error: show needs one artifact or directory path\n";
      return 1;
    }
    return commandShow(
        std::vector<std::string>(Args.begin() + 1, Args.end()));
  }

  if (Command == "serve")
    return commandServe(
        std::vector<std::string>(Args.begin() + 1, Args.end()));

  if (Command == "submit")
    return commandSubmit(
        std::vector<std::string>(Args.begin() + 1, Args.end()));

  if (Command == "validate") {
    if (Args.size() < 2) {
      std::cerr << "error: validate needs at least one artifact or "
                   "directory path\n";
      return 1;
    }
    return commandValidate(
        std::vector<std::string>(Args.begin() + 1, Args.end()));
  }

  if (Command == "analyze" && Args.size() >= 2 &&
      (Args.size() < 3 || Args[2].rfind("--", 0) == 0)) {
    // Static form: "analyze <workload> [--flags]". The trace-replay form
    // below keeps its two positional arguments (file, then workload).
    return commandStaticAnalyze(
        Args[1], std::vector<std::string>(Args.begin() + 2, Args.end()));
  }

  if (Command == "trace" || Command == "analyze") {
    if (Args.size() < 3) {
      std::cerr << "error: " << Command << " needs two arguments\n";
      return 1;
    }
    CliOptions Options =
        parseOptions(std::vector<std::string>(Args.begin() + 3, Args.end()));
    if (!Options.Ok)
      return 1;
    return Command == "trace" ? commandTrace(Args[1], Args[2], Options)
                              : commandAnalyze(Args[1], Args[2], Options);
  }

  std::cerr << "error: unknown command '" << Command << "'\n";
  printUsage(std::cerr);
  return 1;
}
