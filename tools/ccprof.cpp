//===- tools/ccprof.cpp - Command-line driver ------------------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The command-line face of the library, standing in for the artifact's
// ccProf_run_and_analyze.sh workflow:
//
//   ccprof list
//   ccprof profile <workload> [--optimized] [--exact] [--period N]
//                  [--sampler bursty|jitter|fixed] [--threshold N]
//                  [--level l1|l2] [--mapping identity|firsttouch|shuffled]
//                  [--csv]
//   ccprof compare <workload> [profile options]
//   ccprof trace <workload> <file> [--optimized]
//   ccprof analyze <file> <workload> [profile options]
//
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"
#include "core/Report.h"
#include "support/Table.h"
#include "workloads/Workload.h"

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace ccprof;

namespace {

void printUsage(std::ostream &Out) {
  Out << "usage: ccprof <command> [options]\n"
         "\n"
         "commands:\n"
         "  list                      list the built-in workloads\n"
         "  profile <workload>        run a workload and report conflicts\n"
         "  compare <workload>        profile original and optimized builds\n"
         "  trace <workload> <file>   record a memory trace to a file\n"
         "  analyze <file> <workload> profile a previously recorded trace\n"
         "\n"
         "profile options:\n"
         "  --optimized               use the padded/reordered build\n"
         "  --exact                   capture every miss (simulator-grade)\n"
         "  --period N                mean sampling period (default 1212)\n"
         "  --sampler KIND            bursty | jitter | fixed\n"
         "  --threshold N             short-RCD threshold (default 8)\n"
         "  --level L                 l1 (default) | l2\n"
         "  --mapping M               identity | firsttouch | shuffled\n"
         "  --csv                     emit the loop table as CSV\n";
}

struct CliOptions {
  bool Optimized = false;
  bool Exact = false;
  bool Csv = false;
  ProfileOptions Profile;
  bool Ok = true;
};

CliOptions parseOptions(const std::vector<std::string> &Args) {
  CliOptions Options;
  Options.Profile.Sampling.Kind = SamplingKind::Bursty;

  auto Fail = [&Options](const std::string &Message) {
    std::cerr << "error: " << Message << '\n';
    Options.Ok = false;
  };

  for (size_t I = 0; I < Args.size() && Options.Ok; ++I) {
    const std::string &Arg = Args[I];
    auto NextValue = [&]() -> std::string {
      if (I + 1 >= Args.size()) {
        Fail("missing value for " + Arg);
        return "";
      }
      return Args[++I];
    };

    if (Arg == "--optimized") {
      Options.Optimized = true;
    } else if (Arg == "--exact") {
      Options.Exact = true;
    } else if (Arg == "--csv") {
      Options.Csv = true;
    } else if (Arg == "--period") {
      std::string Value = NextValue();
      if (Options.Ok) {
        long Period = std::atol(Value.c_str());
        if (Period <= 0)
          Fail("--period must be a positive integer");
        else
          Options.Profile.Sampling.MeanPeriod =
              static_cast<uint64_t>(Period);
      }
    } else if (Arg == "--threshold") {
      std::string Value = NextValue();
      if (Options.Ok) {
        long Threshold = std::atol(Value.c_str());
        if (Threshold <= 0)
          Fail("--threshold must be a positive integer");
        else
          Options.Profile.RcdThreshold = static_cast<uint64_t>(Threshold);
      }
    } else if (Arg == "--sampler") {
      std::string Value = NextValue();
      if (Value == "bursty")
        Options.Profile.Sampling.Kind = SamplingKind::Bursty;
      else if (Value == "jitter")
        Options.Profile.Sampling.Kind = SamplingKind::UniformJitter;
      else if (Value == "fixed")
        Options.Profile.Sampling.Kind = SamplingKind::Fixed;
      else if (Options.Ok)
        Fail("unknown sampler '" + Value + "'");
    } else if (Arg == "--level") {
      std::string Value = NextValue();
      if (Value == "l1")
        Options.Profile.Level = ProfileLevel::L1;
      else if (Value == "l2")
        Options.Profile.Level = ProfileLevel::L2;
      else if (Options.Ok)
        Fail("unknown level '" + Value + "'");
    } else if (Arg == "--mapping") {
      std::string Value = NextValue();
      if (Value == "identity")
        Options.Profile.Mapping = PagePolicy::Identity;
      else if (Value == "firsttouch")
        Options.Profile.Mapping = PagePolicy::FirstTouch;
      else if (Value == "shuffled")
        Options.Profile.Mapping = PagePolicy::Shuffled;
      else if (Options.Ok)
        Fail("unknown mapping '" + Value + "'");
    } else {
      Fail("unknown option '" + Arg + "'");
    }
  }
  return Options;
}

int commandList() {
  TextTable Table({"name", "source", "expected"});
  for (const auto &W : makeCaseStudySuite())
    Table.addRow({W->name(), W->sourceFile(),
                  W->expectConflicts() ? "conflicts" : "clean"});
  Table.addSeparator();
  for (const auto &W : makeRodiniaSuite()) {
    if (W->name() == "NW")
      continue; // Already listed with the case studies.
    Table.addRow({W->name(), W->sourceFile(),
                  W->expectConflicts() ? "conflicts" : "clean"});
  }
  Table.addSeparator();
  Table.addRow({"Symmetrization", "symm.cpp", "conflicts"});
  std::cout << Table.render();
  return 0;
}

ProfileResult runPipeline(const Workload &W, const Trace &T,
                          const CliOptions &Options) {
  BinaryImage Image = W.makeBinary();
  ProgramStructure Structure(Image);
  Profiler P(Options.Profile);
  return Options.Exact ? P.profileExact(T, Structure)
                       : P.profile(T, Structure);
}

void emitResult(const ProfileResult &Result, const std::string &Name,
                const CliOptions &Options) {
  if (!Options.Csv) {
    std::cout << renderProfileReport(Result, Name);
    return;
  }
  TextTable Table({"loop", "samples", "miss_contribution", "sets",
                   "cf", "median_rcd", "p_conflict", "verdict"});
  for (const LoopConflictReport &Loop : Result.Loops)
    Table.addRow({Loop.Location, std::to_string(Loop.Samples),
                  fmt::fixed(Loop.MissContribution, 6),
                  std::to_string(Loop.SetsUtilized),
                  fmt::fixed(Loop.ContributionFactor, 6),
                  std::to_string(Loop.MedianRcd),
                  fmt::fixed(Loop.ConflictProbability, 4),
                  Loop.ConflictPredicted ? "conflict" : "clean"});
  std::cout << Table.renderCsv();
}

int commandProfile(const std::string &Name, const CliOptions &Options) {
  std::unique_ptr<Workload> W = makeWorkloadByName(Name);
  if (!W) {
    std::cerr << "error: unknown workload '" << Name
              << "' (try: ccprof list)\n";
    return 1;
  }
  Trace T;
  W->run(Options.Optimized ? WorkloadVariant::Optimized
                           : WorkloadVariant::Original,
         &T);
  emitResult(runPipeline(*W, T, Options), W->name(), Options);
  return 0;
}

int commandCompare(const std::string &Name, const CliOptions &Options) {
  std::unique_ptr<Workload> W = makeWorkloadByName(Name);
  if (!W) {
    std::cerr << "error: unknown workload '" << Name << "'\n";
    return 1;
  }
  for (WorkloadVariant Variant :
       {WorkloadVariant::Original, WorkloadVariant::Optimized}) {
    Trace T;
    W->run(Variant, &T);
    ProfileResult Result = runPipeline(*W, T, Options);
    std::cout << "=== " << W->name() << " ("
              << (Variant == WorkloadVariant::Original ? "original"
                                                        : "optimized")
              << ") ===\n";
    emitResult(Result, W->name(), Options);
    std::cout << '\n';
  }
  return 0;
}

int commandTrace(const std::string &Name, const std::string &Path,
                 const CliOptions &Options) {
  std::unique_ptr<Workload> W = makeWorkloadByName(Name);
  if (!W) {
    std::cerr << "error: unknown workload '" << Name << "'\n";
    return 1;
  }
  Trace T;
  W->run(Options.Optimized ? WorkloadVariant::Optimized
                           : WorkloadVariant::Original,
         &T);
  std::ofstream Out(Path, std::ios::binary);
  if (!Out || !T.writeTo(Out)) {
    std::cerr << "error: cannot write trace to " << Path << '\n';
    return 1;
  }
  std::cout << "wrote " << T.size() << " records to " << Path << '\n';
  return 0;
}

int commandAnalyze(const std::string &Path, const std::string &Name,
                   const CliOptions &Options) {
  std::unique_ptr<Workload> W = makeWorkloadByName(Name);
  if (!W) {
    std::cerr << "error: unknown workload '" << Name << "'\n";
    return 1;
  }
  std::ifstream In(Path, std::ios::binary);
  Trace T;
  if (!In || !Trace::readFrom(In, T)) {
    std::cerr << "error: cannot read trace from " << Path << '\n';
    return 1;
  }
  emitResult(runPipeline(*W, T, Options), W->name() + " (from trace)",
             Options);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  if (Args.empty() || Args[0] == "--help" || Args[0] == "-h" ||
      Args[0] == "help") {
    printUsage(Args.empty() ? std::cerr : std::cout);
    return Args.empty() ? 1 : 0;
  }

  const std::string &Command = Args[0];
  if (Command == "list")
    return commandList();

  if (Command == "profile" || Command == "compare") {
    if (Args.size() < 2) {
      std::cerr << "error: " << Command << " needs a workload name\n";
      return 1;
    }
    CliOptions Options =
        parseOptions(std::vector<std::string>(Args.begin() + 2, Args.end()));
    if (!Options.Ok)
      return 1;
    return Command == "profile" ? commandProfile(Args[1], Options)
                                : commandCompare(Args[1], Options);
  }

  if (Command == "trace" || Command == "analyze") {
    if (Args.size() < 3) {
      std::cerr << "error: " << Command << " needs two arguments\n";
      return 1;
    }
    CliOptions Options =
        parseOptions(std::vector<std::string>(Args.begin() + 3, Args.end()));
    if (!Options.Ok)
      return 1;
    return Command == "trace" ? commandTrace(Args[1], Args[2], Options)
                              : commandAnalyze(Args[1], Args[2], Options);
  }

  std::cerr << "error: unknown command '" << Command << "'\n";
  printUsage(std::cerr);
  return 1;
}
